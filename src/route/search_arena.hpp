// Reusable shortest-path search workspace (the routing hot path's arena).
//
// Every search over the RoutingGraph needs per-node distance / parent /
// settled state plus a priority-queue buffer. Allocating those per query —
// O(n) per routed net per negotiation iteration — dominated the router's
// runtime on large fabrics. A SearchArena owns them once and invalidates in
// O(1) by bumping a generation counter: a node's state is live only while
// its stamp matches the current generation, so `begin()` costs nothing per
// node and the arrays stay hot in cache across queries.
//
// The arena is shared by the incremental Router (integer Duration costs),
// the PathFinder negotiated search (double congestion costs), and the ALT
// landmark-table builders (route/landmarks.hpp), whose 2K+K Dijkstras per
// fabric reuse one double arena across every source — hence the cost-type
// template. Not thread-safe; one arena per searching thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace qspr {

template <typename Cost>
class SearchArena {
 public:
  /// Heap entry over (f = g + h, g, node); g- and node-tie-breaks keep the
  /// search deterministic across platforms.
  struct HeapEntry {
    Cost f;
    Cost g;
    RouteNodeId node;

    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.f != b.f) return a.f > b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.node > b.node;
    }
  };

  static constexpr Cost infinity() {
    if constexpr (std::is_floating_point_v<Cost>) {
      return std::numeric_limits<Cost>::infinity();
    } else {
      return static_cast<Cost>(kInfiniteDuration);
    }
  }

  /// Starts a fresh search over `node_count` nodes. O(1) except on first use
  /// (or growth), when the arrays are sized; prior state is invalidated by
  /// the generation bump.
  void begin(std::size_t node_count) {
    if (dist_.size() < node_count) {
      dist_.resize(node_count);
      parent_.resize(node_count);
      settled_.resize(node_count);
      stamp_.resize(node_count, 0);
    }
    if (++generation_ == 0) {  // wrapped: stamps may alias, wipe them
      std::fill(stamp_.begin(), stamp_.end(), 0);
      std::fill(stamp_b_.begin(), stamp_b_.end(), 0);
      generation_ = 1;
    }
    heap_.clear();
  }

  /// Starts a fresh *bidirectional* search: the primary (forward) frontier
  /// plus a second generation-stamped frontier sharing the same generation
  /// counter. Callers that never go bidirectional pay nothing — the backward
  /// arrays are sized on first begin_dual only.
  void begin_dual(std::size_t node_count) {
    begin(node_count);
    if (dist_b_.size() < node_count) {
      dist_b_.resize(node_count);
      parent_b_.resize(node_count);
      settled_b_.resize(node_count);
      stamp_b_.resize(node_count, 0);
    }
    heap_b_.clear();
  }

  [[nodiscard]] Cost dist(RouteNodeId id) {
    touch(id.index());
    return dist_[id.index()];
  }
  [[nodiscard]] RouteNodeId parent(RouteNodeId id) const {
    return stamp_[id.index()] == generation_ ? parent_[id.index()]
                                             : RouteNodeId::invalid();
  }
  [[nodiscard]] bool settled(RouteNodeId id) {
    touch(id.index());
    return settled_[id.index()] != 0;
  }
  void settle(RouteNodeId id) { settled_[id.index()] = 1; }
  /// Records a relaxation: `id` is now reached at `g` via `from`.
  void relax(RouteNodeId id, Cost g, RouteNodeId from) {
    touch(id.index());
    dist_[id.index()] = g;
    parent_[id.index()] = from;
  }

  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }
  void heap_push(Cost f, Cost g, RouteNodeId node) {
    heap_.push_back(HeapEntry{f, g, node});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  HeapEntry heap_pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    return top;
  }
  /// Smallest entry without removal (heap must be non-empty) — the
  /// meet-in-the-middle termination test reads both tops every step.
  [[nodiscard]] const HeapEntry& heap_top() const { return heap_.front(); }

  // --- second (backward) frontier; live only after begin_dual ---

  [[nodiscard]] Cost dist_b(RouteNodeId id) {
    touch_b(id.index());
    return dist_b_[id.index()];
  }
  [[nodiscard]] RouteNodeId parent_b(RouteNodeId id) const {
    return stamp_b_[id.index()] == generation_ ? parent_b_[id.index()]
                                               : RouteNodeId::invalid();
  }
  [[nodiscard]] bool settled_b(RouteNodeId id) {
    touch_b(id.index());
    return settled_b_[id.index()] != 0;
  }
  void settle_b(RouteNodeId id) { settled_b_[id.index()] = 1; }
  void relax_b(RouteNodeId id, Cost g, RouteNodeId from) {
    touch_b(id.index());
    dist_b_[id.index()] = g;
    parent_b_[id.index()] = from;
  }

  [[nodiscard]] bool heap_empty_b() const { return heap_b_.empty(); }
  void heap_push_b(Cost f, Cost g, RouteNodeId node) {
    heap_b_.push_back(HeapEntry{f, g, node});
    std::push_heap(heap_b_.begin(), heap_b_.end(), std::greater<>{});
  }
  HeapEntry heap_pop_b() {
    std::pop_heap(heap_b_.begin(), heap_b_.end(), std::greater<>{});
    const HeapEntry top = heap_b_.back();
    heap_b_.pop_back();
    return top;
  }
  [[nodiscard]] const HeapEntry& heap_top_b() const { return heap_b_.front(); }

 private:
  void touch(std::size_t i) {
    if (stamp_[i] != generation_) {
      stamp_[i] = generation_;
      dist_[i] = infinity();
      parent_[i] = RouteNodeId::invalid();
      settled_[i] = 0;
    }
  }
  void touch_b(std::size_t i) {
    if (stamp_b_[i] != generation_) {
      stamp_b_[i] = generation_;
      dist_b_[i] = infinity();
      parent_b_[i] = RouteNodeId::invalid();
      settled_b_[i] = 0;
    }
  }

  std::vector<Cost> dist_;
  std::vector<RouteNodeId> parent_;
  std::vector<std::uint8_t> settled_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
  std::vector<HeapEntry> heap_;  // binary min-heap via std::push/pop_heap
  // Backward-frontier twin state (bidirectional searches only); shares
  // generation_ so one begin_dual invalidates both sides in O(1).
  std::vector<Cost> dist_b_;
  std::vector<RouteNodeId> parent_b_;
  std::vector<std::uint8_t> settled_b_;
  std::vector<std::uint32_t> stamp_b_;
  std::vector<HeapEntry> heap_b_;
};

/// Generation-stamped membership set over a dense index range: O(1) insert /
/// contains / clear, no per-use allocation. Replaces the O(P²) repeated
/// std::find dedup when collecting the distinct resources of a path.
class StampedSet {
 public:
  void reset(std::size_t universe) {
    if (stamp_.size() < universe) stamp_.resize(universe, 0);
    if (++generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
  }

  /// Inserts `i`; returns true when `i` was not yet a member.
  bool insert(std::size_t i) {
    if (stamp_[i] == generation_) return false;
    stamp_[i] = generation_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    return stamp_[i] == generation_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
};

/// Pool of per-worker scratch objects indexed by an Executor worker id.
/// Slots live behind stable unique_ptrs, so growing the pool never moves a
/// scratch another worker is using, and two workers never share a cache line
/// through adjacent slots. Confinement contract: slot `w` is only ever
/// touched by the thread currently acting as worker `w` of one owning
/// context — a pool must not be shared by two *concurrent* parallel calls
/// (hold one pool per negotiation context, exactly like a single scratch).
template <typename Scratch>
class WorkerScratchPool {
 public:
  WorkerScratchPool() = default;
  explicit WorkerScratchPool(std::size_t workers) { grow_to(workers); }

  /// Ensures at least `workers` slots exist; existing slots are preserved
  /// (their warmed allocations survive across batches).
  void grow_to(std::size_t workers) {
    while (slots_.size() < workers) {
      slots_.push_back(std::make_unique<Scratch>());
    }
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  [[nodiscard]] Scratch& for_worker(std::size_t worker) {
    return *slots_[worker];
  }

 private:
  std::vector<std::unique_ptr<Scratch>> slots_;
};

}  // namespace qspr
