// Reusable shortest-path search workspace (the routing hot path's arena).
//
// Every search over the RoutingGraph needs per-node distance / parent /
// settled state plus a priority-queue buffer. Allocating those per query —
// O(n) per routed net per negotiation iteration — dominated the router's
// runtime on large fabrics. A SearchArena owns them once and invalidates in
// O(1) by bumping a generation counter: a node's state is live only while
// its stamp matches the current generation, so `begin()` costs nothing per
// node and the arrays stay hot in cache across queries.
//
// The arena is shared by the incremental Router (integer Duration costs)
// and the PathFinder negotiated search (double congestion costs), hence the
// cost-type template. Not thread-safe; one arena per searching thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace qspr {

template <typename Cost>
class SearchArena {
 public:
  /// Heap entry over (f = g + h, g, node); g- and node-tie-breaks keep the
  /// search deterministic across platforms.
  struct HeapEntry {
    Cost f;
    Cost g;
    RouteNodeId node;

    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.f != b.f) return a.f > b.f;
      if (a.g != b.g) return a.g > b.g;
      return a.node > b.node;
    }
  };

  static constexpr Cost infinity() {
    if constexpr (std::is_floating_point_v<Cost>) {
      return std::numeric_limits<Cost>::infinity();
    } else {
      return static_cast<Cost>(kInfiniteDuration);
    }
  }

  /// Starts a fresh search over `node_count` nodes. O(1) except on first use
  /// (or growth), when the arrays are sized; prior state is invalidated by
  /// the generation bump.
  void begin(std::size_t node_count) {
    if (dist_.size() < node_count) {
      dist_.resize(node_count);
      parent_.resize(node_count);
      settled_.resize(node_count);
      stamp_.resize(node_count, 0);
    }
    if (++generation_ == 0) {  // wrapped: stamps may alias, wipe them
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    heap_.clear();
  }

  [[nodiscard]] Cost dist(RouteNodeId id) {
    touch(id.index());
    return dist_[id.index()];
  }
  [[nodiscard]] RouteNodeId parent(RouteNodeId id) const {
    return stamp_[id.index()] == generation_ ? parent_[id.index()]
                                             : RouteNodeId::invalid();
  }
  [[nodiscard]] bool settled(RouteNodeId id) {
    touch(id.index());
    return settled_[id.index()] != 0;
  }
  void settle(RouteNodeId id) { settled_[id.index()] = 1; }
  /// Records a relaxation: `id` is now reached at `g` via `from`.
  void relax(RouteNodeId id, Cost g, RouteNodeId from) {
    touch(id.index());
    dist_[id.index()] = g;
    parent_[id.index()] = from;
  }

  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }
  void heap_push(Cost f, Cost g, RouteNodeId node) {
    heap_.push_back(HeapEntry{f, g, node});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  HeapEntry heap_pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    return top;
  }

 private:
  void touch(std::size_t i) {
    if (stamp_[i] != generation_) {
      stamp_[i] = generation_;
      dist_[i] = infinity();
      parent_[i] = RouteNodeId::invalid();
      settled_[i] = 0;
    }
  }

  std::vector<Cost> dist_;
  std::vector<RouteNodeId> parent_;
  std::vector<std::uint8_t> settled_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
  std::vector<HeapEntry> heap_;  // binary min-heap via std::push/pop_heap
};

/// Generation-stamped membership set over a dense index range: O(1) insert /
/// contains / clear, no per-use allocation. Replaces the O(P²) repeated
/// std::find dedup when collecting the distinct resources of a path.
class StampedSet {
 public:
  void reset(std::size_t universe) {
    if (stamp_.size() < universe) stamp_.resize(universe, 0);
    if (++generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
  }

  /// Inserts `i`; returns true when `i` was not yet a member.
  bool insert(std::size_t i) {
    if (stamp_[i] == generation_) return false;
    stamp_[i] = generation_;
    return true;
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    return stamp_[i] == generation_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
};

}  // namespace qspr
