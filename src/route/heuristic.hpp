// Admissible A* lower bounds on the remaining routing cost (paper §IV.B).
//
// The grid bound charges one uncongested move (t_move) per Manhattan cell
// and, when the remaining displacement provably forces an orientation
// change, one turn. It is admissible because congestion penalties only
// inflate move costs (penalty >= 1), traps are endpoints only, and any path
// that must travel both axes — or travel an axis perpendicular to the
// node's current orientation — has to cross at least one turn edge. It is
// consistent: a move edge (weight >= t_move) lowers the bound by at most
// t_move, and a turn edge (weight == turn_cost) by at most turn_cost, so
// settled nodes are never re-expanded.
#pragma once

#include <cstdlib>

#include "common/geometry.hpp"
#include "route/routing_graph.hpp"

namespace qspr {

/// Lower bound on the cost of reaching the trap at `target` from `node`.
/// `turn_cost` is the selection cost of one turn edge (t_turn when
/// turn-aware; the router's or PathFinder's nominal turn weight otherwise).
template <typename Cost>
[[nodiscard]] Cost grid_lower_bound(const RouteNode& node, Position target,
                                    Cost t_move, Cost turn_cost) {
  const int dr = std::abs(node.cell.row - target.row);
  const int dc = std::abs(node.cell.col - target.col);
  Cost bound = static_cast<Cost>(dr + dc) * t_move;
  if (node.is_trap) {
    // Orientation is meaningless inside a trap; only a genuinely L-shaped
    // remaining displacement forces a turn.
    if (dr != 0 && dc != 0) bound += turn_cost;
    return bound;
  }
  const bool needs_horizontal = dc != 0;
  const bool needs_vertical = dr != 0;
  if ((needs_horizontal && needs_vertical) ||
      (needs_horizontal && node.orientation == Orientation::Vertical) ||
      (needs_vertical && node.orientation == Orientation::Horizontal)) {
    bound += turn_cost;
  }
  return bound;
}

}  // namespace qspr
