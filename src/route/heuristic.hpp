// Admissible A* lower bounds on the remaining routing cost (paper §IV.B).
//
// The grid bound charges one uncongested move (t_move) per Manhattan cell
// and, when the remaining displacement provably forces an orientation
// change, one turn. It is admissible because congestion penalties only
// inflate move costs (penalty >= 1), traps are endpoints only, and any path
// that must travel both axes — or travel an axis perpendicular to the
// node's current orientation — has to cross at least one turn edge. It is
// consistent: a move edge (weight >= t_move) lowers the bound by at most
// t_move, and a turn edge (weight == turn_cost) by at most turn_cost, so
// settled nodes are never re-expanded.
//
// The unidirectional PathFinder search combines this bound by max with the
// ALT landmark bound (route/landmarks.hpp) when landmarks are enabled: a
// max of admissible-and-consistent bounds is itself admissible and
// consistent, so the stronger of the two prunes at every node without
// giving up exactness. The grid bound stays the only potential of the
// bidirectional frontiers — the one-sided ALT bound measurably *grows*
// balanced bidirectional searches (see pathfinder.cpp).
#pragma once

#include <cstdlib>

#include "common/geometry.hpp"
#include "route/routing_graph.hpp"

namespace qspr {

/// Lower bound on the cost of reaching the trap at `target` from `node`.
/// `turn_cost` is the selection cost of one turn edge (t_turn when
/// turn-aware; the router's or PathFinder's nominal turn weight otherwise).
template <typename Cost>
[[nodiscard]] Cost grid_lower_bound(const RouteNode& node, Position target,
                                    Cost t_move, Cost turn_cost) {
  const int dr = std::abs(node.cell.row - target.row);
  const int dc = std::abs(node.cell.col - target.col);
  Cost bound = static_cast<Cost>(dr + dc) * t_move;
  if (node.is_trap) {
    // Orientation is meaningless inside a trap; only a genuinely L-shaped
    // remaining displacement forces a turn.
    if (dr != 0 && dc != 0) bound += turn_cost;
    return bound;
  }
  const bool needs_horizontal = dc != 0;
  const bool needs_vertical = dr != 0;
  if ((needs_horizontal && needs_vertical) ||
      (needs_horizontal && node.orientation == Orientation::Vertical) ||
      (needs_vertical && node.orientation == Orientation::Horizontal)) {
    bound += turn_cost;
  }
  return bound;
}

/// Congestion-adaptive variant of the grid bound (the PathFinder's scaled
/// A* heuristic). `floor` must be a proven lower bound on the negotiated
/// penalty of entering *any* channel/junction resource under the current
/// congestion state (CongestionLedger::penalty_floor, >= 1). Every one of
/// the remaining Manhattan moves enters a capacity-priced resource — except
/// the final move when the path ends inside a trap (trap entries cost a flat
/// t_move) — so the per-move term scales by `floor` without losing
/// admissibility, and the bound stops collapsing to the uncongested grid
/// distance when penalties dominate the true cost. The turn term is
/// unchanged: turn edges carry no congestion penalty.
///
/// `moves_end_in_trap` says whether the bounded path terminates inside a
/// trap: true for the forward frontier (the search target is a trap) and for
/// backward bounds evaluated *at* trap nodes; false for backward bounds at
/// channel/junction nodes (every move of a source->node path is priced).
/// With floor == 1 both variants reduce exactly to grid_lower_bound.
/// Consistency (h(u) <= w_min(u,v) + h(v) under the floored edge weights)
/// holds for both frontiers; tests/search_equivalence_test.cpp checks it
/// edge-exhaustively.
[[nodiscard]] inline double congestion_scaled_bound(const RouteNode& node,
                                                    Position endpoint,
                                                    double t_move,
                                                    double turn_cost,
                                                    double floor,
                                                    bool moves_end_in_trap) {
  const int dr = std::abs(node.cell.row - endpoint.row);
  const int dc = std::abs(node.cell.col - endpoint.col);
  const int distance = dr + dc;
  double bound = 0.0;
  if (distance > 0) {
    const double scaled_moves =
        moves_end_in_trap ? static_cast<double>(distance - 1) * floor + 1.0
                          : static_cast<double>(distance) * floor;
    bound = scaled_moves * t_move;
  }
  if (node.is_trap) {
    if (dr != 0 && dc != 0) bound += turn_cost;
    return bound;
  }
  const bool needs_horizontal = dc != 0;
  const bool needs_vertical = dr != 0;
  if ((needs_horizontal && needs_vertical) ||
      (needs_horizontal && node.orientation == Orientation::Vertical) ||
      (needs_vertical && node.orientation == Orientation::Horizontal)) {
    bound += turn_cost;
  }
  return bound;
}

}  // namespace qspr
