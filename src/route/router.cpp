#include "route/router.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "route/heuristic.hpp"

namespace qspr {

Router::Router(const RoutingGraph& graph, const TechnologyParams& params,
               RouterOptions options)
    : graph_(&graph), params_(params), options_(options) {
  params_.validate();
}

std::optional<Router::NodePath> Router::shortest_node_path(
    RouteNodeId from, RouteNodeId to, const CongestionState& congestion,
    SearchArena<Duration>& arena, TrapId allowed_trap) const {
  require(from.is_valid() && to.is_valid(), "invalid route endpoints");
  if (from == to) {
    return NodePath{{from}, 0};
  }

  const Position target_cell = graph_->node(to).cell;
  const TrapId target_trap = graph_->node(to).trap;
  const Duration turn_cost = options_.turn_aware ? params_.t_turn : 0;

  arena.begin(graph_->node_count());
  arena.relax(from, 0, RouteNodeId::invalid());
  arena.heap_push(
      grid_lower_bound(graph_->node(from), target_cell, params_.t_move,
                       turn_cost),
      0, from);

  while (!arena.heap_empty()) {
    const auto entry = arena.heap_pop();
    // Start the next pop's node state + adjacency row on their way while we
    // expand this entry; purely a latency hint, never affects the search.
    const RouteNodeId ahead = arena.heap_peek_node();
    arena.prefetch(ahead);
    graph_->prefetch_edges(ahead);
    if (arena.settled(entry.node) || entry.g != arena.dist(entry.node)) {
      continue;
    }
    arena.settle(entry.node);

    if (entry.node == to) {
      NodePath result;
      result.cost = entry.g;
      for (RouteNodeId n = to; n.is_valid(); n = arena.parent(n)) {
        result.nodes.push_back(n);
        if (n == from) break;
      }
      std::reverse(result.nodes.begin(), result.nodes.end());
      return result;
    }

    for (const RouteEdge& edge : graph_->edges(entry.node)) {
      const RouteNode& v = graph_->node(edge.to);

      Duration weight = 0;
      if (edge.is_turn) {
        weight = turn_cost;
      } else if (v.is_trap) {
        // Traps are endpoints only, never corridors.
        if (v.trap != target_trap && v.trap != allowed_trap) continue;
        if (edge.to != to) continue;
        weight = params_.t_move;
      } else if (v.junction.is_valid()) {
        if (congestion.junction_load(v.junction) >=
            params_.junction_capacity) {
          continue;
        }
        weight = params_.t_move;
      } else if (v.segment.is_valid()) {
        const int load = congestion.segment_load(v.segment);
        if (load >= params_.channel_capacity) continue;
        weight = params_.t_move * static_cast<Duration>(load + 1);
      } else {
        weight = params_.t_move;
      }

      const Duration candidate = entry.g + weight;
      if (candidate < arena.dist(edge.to)) {
        arena.relax(edge.to, candidate, entry.node);
        arena.heap_push(
            candidate + grid_lower_bound(v, target_cell, params_.t_move,
                                         turn_cost),
            candidate, edge.to);
      }
    }
  }
  return std::nullopt;
}

std::optional<RoutedPath> Router::route_trap_to_trap(
    TrapId from, TrapId to, const CongestionState& congestion,
    SearchArena<Duration>& arena, Duration* selection_cost) const {
  const RouteNodeId source = graph_->trap_node(from);
  const RouteNodeId target = graph_->trap_node(to);
  const auto found = shortest_node_path(source, target, congestion, arena,
                                        from);
  if (!found.has_value()) return std::nullopt;
  if (selection_cost != nullptr) *selection_cost = found->cost;
  return lower_path(*graph_, found->nodes, params_);
}

}  // namespace qspr
