#include "route/router.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace qspr {

namespace {

// Priority queue entry over (f = g + h, g, node); g- and node-tie-breaks keep
// the search deterministic across platforms.
struct QueueEntry {
  Duration f;
  Duration g;
  RouteNodeId node;
};

bool operator>(const QueueEntry& a, const QueueEntry& b) {
  if (a.f != b.f) return a.f > b.f;
  if (a.g != b.g) return a.g > b.g;
  return a.node > b.node;
}

}  // namespace

Router::Router(const RoutingGraph& graph, const TechnologyParams& params,
               RouterOptions options)
    : graph_(&graph), params_(params), options_(options) {
  params_.validate();
  states_.resize(graph.node_count());
}

Duration Router::heuristic(RouteNodeId node, Position target) const {
  // Admissible: every remaining cell costs at least one uncongested move.
  return static_cast<Duration>(
             manhattan_distance(graph_->node(node).cell, target)) *
         params_.t_move;
}

std::optional<std::vector<RouteNodeId>> Router::shortest_node_path(
    RouteNodeId from, RouteNodeId to, const CongestionState& congestion,
    TrapId allowed_trap) {
  require(from.is_valid() && to.is_valid(), "invalid route endpoints");
  if (from == to) {
    last_cost_ = 0;
    return std::vector<RouteNodeId>{from};
  }

  ++generation_;
  const Position target_cell = graph_->node(to).cell;
  const TrapId target_trap = graph_->node(to).trap;

  auto& states = states_;
  const auto touch = [&](RouteNodeId id) -> NodeState& {
    NodeState& s = states[id.index()];
    if (s.generation != generation_) {
      s.generation = generation_;
      s.distance = kInfiniteDuration;
      s.parent = RouteNodeId::invalid();
      s.settled = false;
    }
    return s;
  };

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;

  touch(from).distance = 0;
  frontier.push(QueueEntry{heuristic(from, target_cell), 0, from});

  while (!frontier.empty()) {
    const QueueEntry entry = frontier.top();
    frontier.pop();
    NodeState& current = touch(entry.node);
    if (current.settled || entry.g != current.distance) continue;
    current.settled = true;

    if (entry.node == to) {
      last_cost_ = entry.g;
      std::vector<RouteNodeId> path;
      for (RouteNodeId n = to; n.is_valid(); n = states[n.index()].parent) {
        path.push_back(n);
        if (n == from) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }

    for (const RouteEdge& edge : graph_->edges(entry.node)) {
      const RouteNode& v = graph_->node(edge.to);

      Duration weight = 0;
      if (edge.is_turn) {
        weight = options_.turn_aware ? params_.t_turn : 0;
      } else if (v.is_trap) {
        // Traps are endpoints only, never corridors.
        if (v.trap != target_trap && v.trap != allowed_trap) continue;
        if (edge.to != to) continue;
        weight = params_.t_move;
      } else if (v.junction.is_valid()) {
        if (congestion.junction_load(v.junction) >=
            params_.junction_capacity) {
          continue;
        }
        weight = params_.t_move;
      } else if (v.segment.is_valid()) {
        const int load = congestion.segment_load(v.segment);
        if (load >= params_.channel_capacity) continue;
        weight = params_.t_move * static_cast<Duration>(load + 1);
      } else {
        weight = params_.t_move;
      }

      const Duration candidate = entry.g + weight;
      NodeState& next = touch(edge.to);
      if (candidate < next.distance) {
        next.distance = candidate;
        next.parent = entry.node;
        frontier.push(
            QueueEntry{candidate + heuristic(edge.to, target_cell), candidate,
                       edge.to});
      }
    }
  }
  return std::nullopt;
}

std::optional<RoutedPath> Router::route_trap_to_trap(
    TrapId from, TrapId to, const CongestionState& congestion) {
  const RouteNodeId source = graph_->trap_node(from);
  const RouteNodeId target = graph_->trap_node(to);
  auto nodes = shortest_node_path(source, target, congestion, from);
  if (!nodes.has_value()) return std::nullopt;
  return lower_path(*graph_, *nodes, params_);
}

}  // namespace qspr
