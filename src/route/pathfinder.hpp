// PathFinder: the negotiated-congestion router of McMurchie & Ebeling that
// QUALE used for routing and "dealing with resource contentions" (paper §I,
// ref. [3]).
//
// All nets (qubit relocations) are routed simultaneously: resources may be
// over-subscribed at first, then every iteration re-routes each net against
// a cost that multiplies the base delay by a *present congestion* penalty
// (grows within an iteration as resources fill) and a *history* penalty
// (accumulates across iterations on chronically over-used resources), until
// no channel or junction exceeds its capacity.
//
// The event-driven simulator routes incrementally instead (one instruction
// at a time, Eq. 2 weights); this module provides the classic batch
// formulation for comparison and for users who want whole-layer routing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "route/path.hpp"
#include "route/routing_graph.hpp"
#include "route/search_arena.hpp"

namespace qspr {

struct NetRequest {
  TrapId from;
  TrapId to;
};

/// Inner shortest-path engine of the negotiation loop.
enum class PathFinderEngine : std::uint8_t {
  /// Plain Dijkstra allocating its search state per query. Kept as the
  /// equivalence/benchmark baseline; produces the same negotiated costs.
  ReferenceDijkstra,
  /// A* with the admissible grid lower bound over a generation-stamped
  /// SearchArena reused across all nets and iterations (the fast path).
  AStarArena,
};

struct PathFinderOptions {
  int max_iterations = 30;
  /// Present-congestion penalty factor added per unit of over-use.
  double present_factor = 0.6;
  /// History penalty accumulated per iteration of over-use.
  double history_increment = 0.25;
  /// Model turn delays in the cost (QSPR's enhancement; QUALE ran without).
  bool turn_aware = true;
  /// Inner search engine; the default is the optimized arena-backed A*.
  PathFinderEngine engine = PathFinderEngine::AStarArena;
};

struct PathFinderResult {
  std::vector<RoutedPath> paths;  // one per net, in request order
  int iterations = 0;
  bool converged = false;         // true when no resource is over capacity
  Duration total_delay = 0;       // sum of physical path delays
  int overused_resources = 0;     // at the final iteration
};

/// Thread-confined scratch state of one negotiation run: the search arena,
/// the path-resource dedup set, and the per-net occupancy buffers. Owning it
/// outside the call lets a worker reuse the allocations across many batches
/// (one scratch per thread; never share one between concurrent calls).
struct PathFinderScratch {
  SearchArena<double> arena;
  StampedSet membership;
  std::vector<RouteNodeId> node_buffer;
  std::vector<std::vector<std::uint32_t>> net_resources;
};

/// Routes all nets with negotiated congestion. Nets with from == to receive
/// empty paths. Throws RoutingError when some net has no route at all
/// (disconnected fabric).
PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options = {});

/// As above, reusing the caller's scratch buffers across calls.
PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch);

}  // namespace qspr
