// PathFinder: the negotiated-congestion router of McMurchie & Ebeling that
// QUALE used for routing and "dealing with resource contentions" (paper §I,
// ref. [3]).
//
// All nets (qubit relocations) are routed simultaneously: resources may be
// over-subscribed at first, then every iteration re-routes each net against
// a cost that multiplies the base delay by a *present congestion* penalty
// (grows within an iteration as resources fill) and a *history* penalty
// (accumulates across iterations on chronically over-used resources), until
// no channel or junction exceeds its capacity.
//
// The optimized loop is congestion-adaptive: a dirty-net worklist rips up
// and re-routes only nets overlapping over-subscribed resources (partial
// rip-up), the A* bound scales with the admissible congestion penalty floor
// so it keeps pruning when penalties dominate, and long queries run a
// bidirectional meet-in-the-middle search over the arena's second frontier.
// Each mechanism toggles independently via PathFinderOptions.
//
// With route_jobs >= 2 and an Executor, the nets *within* one iteration
// route concurrently: the dirty worklist is partitioned into waves, each
// wave's nets are searched speculatively against an immutable snapshot of
// the congestion ledger (per-worker scratch from a WorkerScratchPool), and
// results commit serially in net order. A speculative path is committed
// only while the live ledger's penalty landscape is still byte-identical to
// the wave snapshot (tracked by the ledger's divergence delta set plus a
// penalty-floor equality check); otherwise the net is re-routed on the
// committing thread against the true state — exactly what the serial loop
// does. Commit order equals net order and every commit/re-route decision
// depends only on committed state, so the negotiation is bit-identical to
// the serial loop (paths, delays, diagnostics) at any route_jobs and any
// executor worker count, by construction. Speculation applies to the
// AStarArena engine; ReferenceDijkstra always runs the serial loop.
//
// The event-driven simulator routes incrementally instead (one instruction
// at a time, Eq. 2 weights); this module provides the classic batch
// formulation for comparison and for users who want whole-layer routing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "route/landmarks.hpp"
#include "route/path.hpp"
#include "route/routing_graph.hpp"
#include "route/search_arena.hpp"

namespace qspr {

class Executor;  // common/executor.hpp; only the parallel overload needs it

struct NetRequest {
  TrapId from;
  TrapId to;
};

/// Warm-start seed for incremental remapping: one prior RoutedPath per net
/// (aligned to the nets vector; an empty path means "route this net cold").
/// Seeded nets enter the negotiation pre-routed — their occupancy is
/// acquired before iteration 1 — and only nets whose endpoints changed or
/// whose congestion neighbourhood is over-used under the combined seed
/// occupancy go on the dirty worklist. Seeding from a *converged* prior of
/// the same net set yields bit-identical paths with zero searches (the
/// empty-edit identity the incremental_remap bench asserts). Paths must
/// come from the same routing graph; endpoint mismatches are detected and
/// those nets simply route cold.
///
/// Paths alone are NOT enough for a stable warm start on edits: a converged
/// solution is only an equilibrium *under the history costs that produced
/// it*. Re-routing even one net against a fresh ledger (zero history,
/// iteration-1 present factor) sends it through the greedy corridors the
/// prior negotiation priced it out of, the over-use cascades through the
/// seeded nets, and the run either renegotiates everything from scratch or
/// trips the stagnation detector. `history` (the prior ledger's
/// history_table() export) and `present_factor` (the prior run's final
/// schedule position) restore that pricing, so a small edit perturbs only
/// its own congestion neighbourhood. Both are optional: an empty history or
/// zero present factor falls back to cold pricing (and on an empty edit the
/// dirty worklist is empty, so they are never consulted — the d=0
/// bit-identity holds either way).
struct WarmStartSeed {
  std::vector<RoutedPath> paths;
  /// Prior ledger history, dense resource order (PathFinderResult::history).
  /// Ignored unless its size matches the graph's resource table.
  std::vector<double> history;
  /// Present factor of the prior run's final iteration
  /// (PathFinderResult::final_present_factor). The warm negotiation starts
  /// at max(options.present_factor, this), keeping the schedule where the
  /// prior left off instead of re-annealing from iteration 1.
  double present_factor = 0.0;
};

/// Aligns a prior negotiation's paths to a new net list by greedy endpoint
/// matching: each new net takes the first unclaimed prior path with the same
/// (from, to); unmatched nets get empty (cold) seeds. Prior nets and paths
/// must be parallel vectors from one route_nets_negotiated call. Pass the
/// prior result's `history` and `final_present_factor` to carry the
/// negotiation state as well (see WarmStartSeed) — omitting them seeds paths
/// only, which is unstable under non-empty edits.
WarmStartSeed make_warm_seed(const std::vector<NetRequest>& prior_nets,
                             const std::vector<RoutedPath>& prior_paths,
                             const std::vector<NetRequest>& nets,
                             std::vector<double> prior_history = {},
                             double prior_present_factor = 0.0);

/// Inner shortest-path engine of the negotiation loop.
enum class PathFinderEngine : std::uint8_t {
  /// Plain Dijkstra allocating its search state per query. Kept as the
  /// equivalence/benchmark baseline; produces the same negotiated costs.
  ReferenceDijkstra,
  /// A* with the admissible grid lower bound over a generation-stamped
  /// SearchArena reused across all nets and iterations (the fast path).
  AStarArena,
};

struct PathFinderOptions {
  int max_iterations = 30;
  /// Present-congestion penalty factor added per unit of over-use.
  double present_factor = 0.6;
  /// History penalty accumulated per iteration of over-use.
  double history_increment = 0.25;
  /// Model turn delays in the cost (QSPR's enhancement; QUALE ran without).
  bool turn_aware = true;
  /// Inner search engine; the default is the optimized arena-backed A*.
  PathFinderEngine engine = PathFinderEngine::AStarArena;

  // --- congestion-adaptive mechanisms (each independently toggleable; the
  // --- saturated_overload bench suite records their ablation) ---

  /// Partial rip-up/re-route: after the first iteration only *dirty* nets —
  /// nets whose current path overlaps an over-subscribed resource — are
  /// ripped up and re-routed; converged nets keep their paths. Applies to
  /// both engines (it is an outer-loop mechanism).
  bool partial_ripup = true;
  /// Congestion-adaptive A* bound: scale the per-move lower bound by the
  /// congestion penalty floor (CongestionLedger::penalty_floor), keeping the
  /// bound admissible — and still pruning — while congestion penalties
  /// dominate the uncongested grid distance. AStarArena only.
  bool adaptive_bound = true;
  /// Congestion-adaptive negotiation schedule (engine-agnostic, so engine
  /// equivalence is preserved): (a) the geometric present-factor schedule is
  /// capped at present_factor_max, keeping saturated-regime edge weights
  /// distance-commensurate instead of letting every late search degenerate
  /// into a whole-fabric Dijkstra flood; (b) when the total capacity excess
  /// stagnates, the history increment ramps geometrically until the plateau
  /// breaks (the permanent pressure classic PathFinder gets from its
  /// unbounded present factor, without the flood); (c) the loop stops as
  /// soon as the residual excess reaches the provable structural floor
  /// (endpoint port demand over port capacity — no negotiation can do
  /// better), or after stagnation_limit consecutive iterations without
  /// excess improvement despite the ramp.
  bool adaptive_schedule = true;
  /// Present-factor ceiling under adaptive_schedule. 64 is above the factor
  /// any converging bench suite ever reaches (iteration 12 of the x1.5
  /// schedule), so converging negotiations are bit-identical with or without
  /// the cap.
  double present_factor_max = 64.0;
  /// Consecutive non-improving iterations on a *saturated plateau* (total
  /// excess comparable to the net count) before the loop reports
  /// non-convergence instead of burning the iteration cap; small stubborn
  /// tails are instead pressed with a ramped history increment for the
  /// remaining budget. Only applies under adaptive_schedule; 0 disables.
  int stagnation_limit = 3;
  /// Bidirectional A* (meet-in-the-middle over the arena's second frontier)
  /// for long queries, where a unidirectional search settles most of the
  /// fabric before reaching the target. AStarArena only.
  bool bidirectional = true;
  /// Minimum source-target Manhattan distance (in cells) before a query uses
  /// the bidirectional search; short queries stay unidirectional.
  int bidirectional_min_cells = 24;

  // --- ALT landmark lower bounds + bounded-suboptimal knob (AStarArena
  // --- only; see route/landmarks.hpp for the admissibility argument) ---

  /// Landmarks for the ALT triangle-inequality bound, max-combined with the
  /// grid bound. 0 disables ALT entirely. When `landmarks` is null the
  /// tables are built at negotiation start (K+2K Dijkstras); callers on the
  /// hot path should pass the fabric's cached tables instead.
  int alt_landmarks = 0;
  /// Prebuilt base (floor 1) landmark tables for this graph, borrowed for
  /// the duration of the call — FabricArtifactCache::landmark_tables() is
  /// the intended source. Ignored unless alt_landmarks > 0; must match the
  /// graph and the search's t_move/turn costs.
  const LandmarkTables* landmarks = nullptr;
  /// Refresh trigger for the congestion-aware ALT tables: when an iteration
  /// starts with (1 + max accumulated history) >= (strength of the current
  /// tables) * threshold, the tables are rebuilt over the per-node history
  /// prices t_move * (1 + history(v)) (same landmark set — rebuilds are
  /// deterministic). History only grows within a run, so rebuilt tables
  /// stay admissible for the rest of the negotiation regardless of trigger
  /// timing; larger thresholds mean fewer (2K-Dijkstra) rebuilds. Requires
  /// adaptive_bound; must be > 1. The default is deliberately conservative:
  /// on the saturated bench loads the *present* penalty (factor up to
  /// present_factor_max) dominates the baked-in history prices, so eager
  /// rebuilds cut settled nodes by only a few percent while their Dijkstra
  /// cost roughly doubles the negotiation wall time — 4.0 keeps refreshes
  /// to runs whose history has genuinely ramped (max history >= 3).
  double alt_refresh_threshold = 4.0;
  /// Bounded-suboptimal search: A* orders the frontier by g + w*h instead
  /// of g + h (and the bidirectional termination scales accordingly), so
  /// each inner search returns a path of cost <= w * optimal. 1.0 is exact
  /// and bit-identical to the unweighted search (IEEE: h * 1.0 == h); > 1
  /// trades bounded path-quality slack for fewer expansions on saturated
  /// loads. Applies to AStarArena; ReferenceDijkstra has no heuristic.
  double heuristic_weight = 1.0;

  // --- speculative intra-iteration parallelism (executor overload only) ---

  /// Worker budget for routing one iteration's dirty nets concurrently.
  /// 1 keeps the serial loop; >= 2 enables wave speculation when the
  /// executor overload is used (AStarArena engine only). Results are
  /// bit-identical at any value.
  int route_jobs = 1;
  /// Nets per speculation wave (0 = auto: 4 * route_jobs, minimum 2). Only
  /// affects how much work is speculated per snapshot, never the result.
  int route_wave_size = 0;

  // --- warm start (incremental remapping) ---

  /// Prior paths to seed the negotiation from, borrowed for the duration of
  /// the call (see WarmStartSeed). Ignored when null, when the seed is not
  /// aligned to the nets vector, or when partial_ripup is off — without the
  /// dirty worklist every net re-routes anyway and a partial seed would
  /// perturb iteration 1's acquire order relative to the cold run.
  const WarmStartSeed* warm = nullptr;
};

struct PathFinderResult {
  std::vector<RoutedPath> paths;  // one per net, in request order
  int iterations_used = 0;        // negotiation iterations actually run
  bool converged = false;         // true when no resource is over capacity
  Duration total_delay = 0;       // sum of physical path delays
  int overused_resources = 0;     // at the final iteration
  int max_overuse = 0;            // worst excess over capacity, final iteration
  int total_excess = 0;           // sum of excess over capacity, final iteration
  /// Provable lower bound on the residual excess of *any* routing of this
  /// net set (endpoint port demand over port capacity). total_excess can
  /// never go below it; converged implies it is 0.
  int min_feasible_excess = 0;
  /// Inner shortest-path searches actually performed; with partial rip-up
  /// this is <= nets * iterations_used (clean nets are skipped). Counted in
  /// serial-equivalent terms: a committed speculative route counts as the
  /// one search the serial loop would have run (extra speculative work is
  /// reported separately below).
  long long searches_performed = 0;
  /// Nodes settled (accepted heap pops) across all counted searches — the
  /// heuristic-quality metric the ALT ablation records. Counted in the same
  /// serial-equivalent terms as searches_performed, so it is bit-identical
  /// at any route_jobs.
  long long nodes_settled = 0;
  /// Landmarks the ALT bound actually used (0 when ALT was off).
  int landmarks_used = 0;
  /// Floored rebuilds of the ALT tables triggered by the refresh threshold.
  int alt_refreshes = 0;
  /// Echo of options.heuristic_weight (1.0 = exact search).
  double heuristic_weight = 1.0;

  // --- warm-start observability (0 on cold runs; deterministic for a
  // --- fixed seed, identical at any route_jobs / frontier kind) ---

  /// Nets that entered the negotiation pre-routed from the warm seed.
  int warm_seeded = 0;
  /// Seeded nets whose prior path survived the whole negotiation untouched
  /// (never ripped up and re-searched). warm_kept == warm_seeded == nets on
  /// an empty edit against a converged prior.
  int warm_kept = 0;
  /// True when the warm attempt failed to converge and the negotiation was
  /// restarted cold (see route_nets_negotiated). The returned paths are then
  /// bit-identical to a cold run's; searches_performed and iterations_used
  /// include the abandoned attempt, so the wasted work stays visible.
  bool warm_restarted = false;
  /// Final history table of the run's ledger (dense resource order) — feed
  /// it into the next WarmStartSeed to resume this negotiation's equilibrium
  /// pressure. Always populated (cold runs too; size == resource count).
  std::vector<double> history;
  /// Present factor of the final iteration actually run; pairs with
  /// `history` in the next WarmStartSeed.
  double final_present_factor = 0.0;

  // --- wave-speculation observability (not part of the bit-identity
  // --- contract: 0 under the serial loop, deterministic for a fixed
  // --- route_jobs/wave size and executor width >= 2, but different across
  // --- route_jobs values). The two counters partition the *speculated*
  // --- searches: commits + reroutes <= searches_performed, with equality
  // --- only when every iteration's worklist actually ran as waves
  // --- (iterations with a single dirty net fall back to the serial step
  // --- and count in neither bucket). ---

  /// Nets whose snapshot-routed path was committed as-is.
  long long speculative_commits = 0;
  /// Nets whose speculation was invalidated by an earlier commit in the
  /// same wave and were re-routed serially at commit time.
  long long speculative_reroutes = 0;
};

/// Per-node negotiated move weights of the optimized engine, kept in sync
/// with the ledger so the inner search loop prices an edge with one array
/// read instead of resolving and pricing the entered resource per edge
/// visit. The structure (node -> resource, resource -> nodes) is rebuilt at
/// every negotiation start — O(nodes), reusing storage — so a scratch can
/// be safely reused across batches on *different* graphs; weights refresh
/// per iteration (O(nodes)) plus per ripped/re-inserted resource (O(cells
/// of that resource)).
class NodeWeightCache {
 public:
  void build(const RoutingGraph& graph, const CongestionLedger& ledger);
  void refresh_all(const CongestionLedger& ledger, double t_move);
  void refresh_resource(const CongestionLedger& ledger, std::size_t index);
  /// Overrides one resource's move weight directly (the wave workers price
  /// their own net's rip-up against an immutable snapshot this way).
  void apply_weight(std::size_t index, double weight);

  std::vector<std::int32_t> node_resource;  // dense ledger index or -1
  std::vector<double> node_weight;          // t_move * entering_penalty
  std::vector<std::vector<std::uint32_t>> resource_nodes;

 private:
  double t_move_ = 0.0;
};

/// Thread-confined scratch state of one negotiation run: the search arena,
/// the path-resource dedup set, and the per-net occupancy buffers. Owning it
/// outside the call lets a worker reuse the allocations across many batches
/// (one scratch per thread; never share one between concurrent calls).
struct PathFinderScratch {
  SearchArena<double> arena;
  StampedSet membership;
  std::vector<RouteNodeId> node_buffer;
  std::vector<std::vector<std::uint32_t>> net_resources;
  /// Dirty-net worklist of the partial rip-up (1 = re-route next iteration).
  std::vector<std::uint8_t> net_dirty;
  /// Per-trap endpoint demand buffer of the structural-floor analysis.
  std::vector<int> trap_demand;
  /// Ledger-synchronised per-node move weights of the optimized engine.
  NodeWeightCache weights;
  /// Base (floor 1) ALT tables built here when options.alt_landmarks > 0
  /// but no prebuilt tables were passed; rebuilt per negotiation (the
  /// scratch may serve different graphs across calls).
  LandmarkTables alt_base;
  /// History-priced ALT rebuild of the current negotiation (refresh
  /// trigger); reset at negotiation start, shared read-only by the wave
  /// workers.
  LandmarkTables alt_refreshed;
  /// Per-node price buffer of the history-priced rebuilds.
  std::vector<double> alt_price;
};

/// Per-worker scratch of the speculative wave workers. Like a single
/// scratch, one pool belongs to one negotiation context at a time; size it
/// to the executor's worker_count().
using PathFinderScratchPool = WorkerScratchPool<PathFinderScratch>;

/// Contiguous [begin, end) wave chunks, in net order, over a dirty worklist
/// of `worklist_size` nets. wave_size 0 selects the auto size
/// (4 * route_jobs, minimum 2). Exposed for the wave-partition unit tests.
std::vector<std::pair<std::size_t, std::size_t>> plan_speculation_waves(
    std::size_t worklist_size, int route_jobs, int wave_size);

/// Routes all nets with negotiated congestion. Nets with from == to receive
/// empty paths. Throws RoutingError when some net has no route at all
/// (disconnected fabric).
///
/// Warm-start robustness: a warm-seeded negotiation that fails to converge
/// is restarted cold once (warm_restarted in the result), so seeding can
/// slow a pathological edit down but never costs convergence — a warm run
/// converges whenever the cold run would. Near a converged prior the
/// fallback never fires; it exists for edits that shift the equilibrium
/// globally (e.g. on a saturated fabric), where no local negotiation can
/// absorb the delta.
PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options = {});

/// As above, reusing the caller's scratch buffers across calls.
PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch);

/// As above, routing each iteration's dirty nets speculatively on
/// `executor` when options.route_jobs >= 2 (see the wave protocol in the
/// file comment). Bit-identical to the serial overloads at any route_jobs
/// and worker count. The pool is grown to executor.worker_count() on entry;
/// callable from inside an executor job (waves become nested sub-jobs).
PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch,
                                       Executor& executor,
                                       PathFinderScratchPool& pool);

}  // namespace qspr
