// Dynamic routing-resource state: how many qubits are using — or have
// reserved for imminent use — each channel segment and junction ("n" in the
// paper's Eq. 2). Reservations are taken for a qubit's whole path when its
// instruction is issued and released as the qubit exits each resource, so a
// fully congested channel's edges weigh infinity until somebody leaves.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace qspr {

/// A capacity-limited routing resource: a channel segment or a junction.
struct ResourceRef {
  enum class Kind : std::uint8_t { Segment, Junction };
  Kind kind = Kind::Segment;
  std::int32_t index = -1;

  static ResourceRef segment(SegmentId id) {
    return {Kind::Segment, id.value()};
  }
  static ResourceRef junction(JunctionId id) {
    return {Kind::Junction, id.value()};
  }

  friend bool operator==(const ResourceRef&, const ResourceRef&) = default;
};

/// Negotiated-congestion bookkeeping of one PathFinder run, dense over all
/// resources (segments first, then junctions — the same layout the inner
/// searches index by).
///
/// Besides the present occupancy and the cross-iteration history penalty it
/// maintains two derived quantities *incrementally*, so the negotiation loop
/// never has to sweep every resource per iteration:
///
///   * the **over-use delta set** — the exact set of currently over-capacity
///     resources, updated in O(1) as paths are ripped up (release) and
///     re-inserted (acquire). Charging history and building the dirty-net
///     worklist of the partial rip-up touch only this set.
///   * the **penalty floor** — a proven lower bound on the cost multiplier of
///     entering *any* resource under the current state, min over resources of
///     (1 + over * present_factor) * (1 + history). Recomputed exactly at
///     each iteration start and min-updated on every release (occupancy
///     increments can only raise penalties), so it stays admissible while the
///     iteration mutates the table. The congestion-adaptive A* bound scales
///     its per-move term by this floor.
class CongestionLedger {
 public:
  CongestionLedger(std::size_t segment_count, std::size_t junction_count,
                   int segment_capacity, int junction_capacity);

  [[nodiscard]] std::size_t size() const { return occupancy_.size(); }

  /// Dense index of a resource: segments first, then junctions.
  [[nodiscard]] std::size_t index_of(ResourceRef resource) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? static_cast<std::size_t>(resource.index)
               : segment_count_ + static_cast<std::size_t>(resource.index);
  }

  [[nodiscard]] int capacity(std::size_t index) const {
    return index < segment_count_ ? segment_capacity_ : junction_capacity_;
  }
  [[nodiscard]] int occupancy(std::size_t index) const {
    return occupancy_[index];
  }
  [[nodiscard]] double history(std::size_t index) const {
    return history_[index];
  }
  [[nodiscard]] bool is_overused(std::size_t index) const {
    return overused_pos_[index] >= 0;
  }

  /// The negotiated cost multiplier one more occupant would pay to enter the
  /// resource: (1 + over * present_factor) * (1 + history), over counted
  /// above capacity. Uses the present factor of the current iteration.
  [[nodiscard]] double entering_penalty(std::size_t index) const {
    const int over = occupancy_[index] + 1 - capacity(index);
    const double present =
        over > 0 ? 1.0 + static_cast<double>(over) * present_factor_ : 1.0;
    return present * (1.0 + history_[index]);
  }

  /// Starts a negotiation iteration: fixes the present factor and, when
  /// `track_floor`, recomputes the exact penalty floor (O(resources), once
  /// per iteration — the per-path updates within the iteration are O(1)).
  void begin_iteration(double present_factor, bool track_floor);

  /// Admissible lower bound on entering_penalty() of every resource, valid
  /// from the last begin_iteration() until the next one. 1.0 when floor
  /// tracking is off.
  [[nodiscard]] double penalty_floor() const { return penalty_floor_; }

  void acquire(std::size_t index);
  void release(std::size_t index);

  /// Marks resources whose over-use is structurally unavoidable (endpoint
  /// port demand above port capacity). They still count as over-used — the
  /// solution stays illegal and is reported as such — but charge_history
  /// skips them: ramping permanent penalties on over-use no negotiation can
  /// remove only poisons the cost landscape and keeps every forced net
  /// dirty forever.
  void mark_structural(const std::vector<std::uint32_t>& indices);
  [[nodiscard]] bool is_structural(std::size_t index) const {
    return !structural_.empty() && structural_[index] != 0;
  }

  /// Currently over-capacity resources (unordered; exact).
  [[nodiscard]] const std::vector<std::uint32_t>& overused() const {
    return overused_;
  }

  struct OveruseSummary {
    int overused = 0;      // resources above capacity
    int max_overuse = 0;   // worst excess over capacity
    int total_excess = 0;  // sum of excess over all over-used resources
  };

  /// Ends an iteration: charges `history_increment` on every over-used
  /// resource and summarises the residual over-use. Touches only the delta
  /// set, not the whole table.
  OveruseSummary charge_history(double history_increment);

 private:
  std::vector<int> occupancy_;
  std::vector<double> history_;
  /// Position of each resource inside overused_, -1 when not over capacity.
  std::vector<std::int32_t> overused_pos_;
  std::vector<std::uint32_t> overused_;
  std::vector<std::uint8_t> structural_;  // sized lazily by mark_structural
  std::size_t segment_count_;
  int segment_capacity_;
  int junction_capacity_;
  double present_factor_ = 0.0;
  double penalty_floor_ = 1.0;
  bool track_floor_ = false;
};

class CongestionState {
 public:
  CongestionState(std::size_t segment_count, std::size_t junction_count);

  [[nodiscard]] int segment_load(SegmentId id) const {
    return segment_load_[id.index()];
  }
  [[nodiscard]] int junction_load(JunctionId id) const {
    return junction_load_[id.index()];
  }
  [[nodiscard]] int load(ResourceRef resource) const;

  void acquire(ResourceRef resource);
  /// Throws SimulationError when releasing a resource with zero load.
  void release(ResourceRef resource);

  /// Sum of loads across all resources (diagnostics).
  [[nodiscard]] long long total_load() const;

 private:
  std::vector<int> segment_load_;
  std::vector<int> junction_load_;
};

}  // namespace qspr
