// Dynamic routing-resource state: how many qubits are using — or have
// reserved for imminent use — each channel segment and junction ("n" in the
// paper's Eq. 2). Reservations are taken for a qubit's whole path when its
// instruction is issued and released as the qubit exits each resource, so a
// fully congested channel's edges weigh infinity until somebody leaves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace qspr {

/// A capacity-limited routing resource: a channel segment or a junction.
struct ResourceRef {
  enum class Kind : std::uint8_t { Segment, Junction };
  Kind kind = Kind::Segment;
  std::int32_t index = -1;

  static ResourceRef segment(SegmentId id) {
    return {Kind::Segment, id.value()};
  }
  static ResourceRef junction(JunctionId id) {
    return {Kind::Junction, id.value()};
  }

  friend bool operator==(const ResourceRef&, const ResourceRef&) = default;
};

/// Negotiated-congestion bookkeeping of one PathFinder run, dense over all
/// resources (segments first, then junctions — the same layout the inner
/// searches index by).
///
/// Besides the present occupancy and the cross-iteration history penalty it
/// maintains two derived quantities *incrementally*, so the negotiation loop
/// never has to sweep every resource per iteration:
///
///   * the **over-use delta set** — the exact set of currently over-capacity
///     resources, updated in O(1) as paths are ripped up (release) and
///     re-inserted (acquire). Charging history and building the dirty-net
///     worklist of the partial rip-up touch only this set.
///   * the **penalty floor** — a proven lower bound on the cost multiplier of
///     entering *any* resource under the current state, min over resources of
///     (1 + over * present_factor) * (1 + history). Recomputed exactly at
///     each iteration start and min-updated on every release (occupancy
///     increments can only raise penalties), so it stays admissible while the
///     iteration mutates the table. The congestion-adaptive A* bound scales
///     its per-move term by this floor.
class CongestionLedger {
 public:
  CongestionLedger(std::size_t segment_count, std::size_t junction_count,
                   int segment_capacity, int junction_capacity);

  [[nodiscard]] std::size_t size() const { return occupancy_.size(); }

  /// Dense index of a resource: segments first, then junctions.
  [[nodiscard]] std::size_t index_of(ResourceRef resource) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? static_cast<std::size_t>(resource.index)
               : segment_count_ + static_cast<std::size_t>(resource.index);
  }

  [[nodiscard]] int capacity(std::size_t index) const {
    return index < segment_count_ ? segment_capacity_ : junction_capacity_;
  }
  [[nodiscard]] int occupancy(std::size_t index) const {
    return occupancy_[index];
  }
  [[nodiscard]] double history(std::size_t index) const {
    return history_[index];
  }
  /// Largest accumulated history over all resources. History only grows
  /// within one negotiation, so (1 + history) per-resource prices baked into
  /// a landmark table at any point stay admissible for the rest of the run;
  /// this maximum is the cheap growth signal the ALT refresh trigger
  /// (PathFinderOptions::alt_refresh_threshold) compares against. Maintained
  /// in charge_history, O(delta set).
  [[nodiscard]] double max_history() const { return max_history_; }

  /// The whole history table, in dense resource order. Exported into a
  /// warm-start seed so a follow-up negotiation resumes the prior run's
  /// equilibrium pressure instead of replaying the whole fight from
  /// iteration 1 (a converged solution is only an equilibrium *under its
  /// history*: re-routing any net without it reverts to greedy shortest
  /// paths and the cascade destroys the seed).
  [[nodiscard]] const std::vector<double>& history_table() const {
    return history_;
  }

  /// Seeds the history table from a prior run's history_table() export and
  /// recomputes max_history. Call before the first negotiation iteration;
  /// a size mismatch (different fabric) is rejected by the caller.
  void seed_history(const std::vector<double>& history);

  [[nodiscard]] bool is_overused(std::size_t index) const {
    return overused_pos_[index] >= 0;
  }

  /// The negotiated cost multiplier one more occupant would pay to enter the
  /// resource: (1 + over * present_factor) * (1 + history), over counted
  /// above capacity. Uses the present factor of the current iteration.
  [[nodiscard]] double entering_penalty(std::size_t index) const {
    const int over = occupancy_[index] + 1 - capacity(index);
    const double present =
        over > 0 ? 1.0 + static_cast<double>(over) * present_factor_ : 1.0;
    return present * (1.0 + history_[index]);
  }

  /// entering_penalty() as it would read after one release() of the
  /// resource. The speculative wave workers of the parallel PathFinder use
  /// this to price their own net's rip-up against an immutable snapshot
  /// ledger, reproducing exactly the value the serial loop's release +
  /// refresh sequence computes.
  [[nodiscard]] double entering_penalty_after_release(std::size_t index) const {
    const int over = occupancy_[index] - capacity(index);
    const double present =
        over > 0 ? 1.0 + static_cast<double>(over) * present_factor_ : 1.0;
    return present * (1.0 + history_[index]);
  }

  /// Present-congestion factor fixed by the last begin_iteration().
  [[nodiscard]] double present_factor() const { return present_factor_; }

  /// Starts a negotiation iteration: fixes the present factor and, when
  /// `track_floor`, recomputes the exact penalty floor (O(resources), once
  /// per iteration — the per-path updates within the iteration are O(1)).
  void begin_iteration(double present_factor, bool track_floor);

  /// Admissible lower bound on entering_penalty() of every resource, valid
  /// from the last begin_iteration() until the next one. 1.0 when floor
  /// tracking is off.
  [[nodiscard]] double penalty_floor() const { return penalty_floor_; }

  void acquire(std::size_t index);
  void release(std::size_t index);

  /// Marks resources whose over-use is structurally unavoidable (endpoint
  /// port demand above port capacity). They still count as over-used — the
  /// solution stays illegal and is reported as such — but charge_history
  /// skips them: ramping permanent penalties on over-use no negotiation can
  /// remove only poisons the cost landscape and keeps every forced net
  /// dirty forever.
  void mark_structural(const std::vector<std::uint32_t>& indices);
  [[nodiscard]] bool is_structural(std::size_t index) const {
    return !structural_.empty() && structural_[index] != 0;
  }

  /// Currently over-capacity resources (unordered; exact).
  [[nodiscard]] const std::vector<std::uint32_t>& overused() const {
    return overused_;
  }

  struct OveruseSummary {
    int overused = 0;      // resources above capacity
    int max_overuse = 0;   // worst excess over capacity
    int total_excess = 0;  // sum of excess over all over-used resources
  };

  /// Ends an iteration: charges `history_increment` on every over-used
  /// resource and summarises the residual over-use. Touches only the delta
  /// set, not the whole table.
  OveruseSummary charge_history(double history_increment);

  // --- speculation divergence tracking (wave protocol of the parallel
  // --- PathFinder) ---
  //
  // begin_speculation() pins the *current* occupancy table as the wave
  // snapshot base; every acquire()/release() afterwards maintains, in O(1),
  // the set of resources whose entering penalty now *differs* from the
  // snapshot's. Within one iteration history and the present factor are
  // fixed, so two occupancies price identically iff they are equal or both
  // strictly below capacity — divergence is therefore exactly
  //     occupancy != snapshot && max(occupancy, snapshot) >= capacity,
  // an integer test, never a floating-point comparison. diverged_count()==0
  // means the whole penalty landscape is byte-identical to the snapshot the
  // wave workers searched against: a speculative path can be committed as
  // the path the serial loop would have produced. The set is self-healing
  // (a rip-up that restores the snapshot occupancy removes the divergence),
  // so later nets in a wave can re-qualify after an earlier conflict.

  /// Starts tracking divergence against the current state. O(resources).
  void begin_speculation();
  /// Stops tracking (acquire/release return to their serial cost).
  void end_speculation();
  [[nodiscard]] bool speculating() const { return speculating_; }
  /// Resources whose entering penalty differs from the speculation base.
  [[nodiscard]] int diverged_count() const { return diverged_count_; }
  /// Per-resource divergence query (the wave conflict test; only meaningful
  /// while speculating).
  [[nodiscard]] bool diverged(std::size_t index) const {
    if (!speculating_) return false;
    const int base = speculation_base_[index];
    const int occupancy = occupancy_[index];
    return occupancy != base && std::max(occupancy, base) >= capacity(index);
  }

 private:
  void update_divergence(std::size_t index, int old_occupancy,
                         int new_occupancy);

  std::vector<int> occupancy_;
  std::vector<double> history_;
  double max_history_ = 0.0;
  /// Position of each resource inside overused_, -1 when not over capacity.
  std::vector<std::int32_t> overused_pos_;
  std::vector<std::uint32_t> overused_;
  std::vector<std::uint8_t> structural_;  // sized lazily by mark_structural
  /// Occupancy table pinned by begin_speculation (the wave snapshot base).
  std::vector<int> speculation_base_;
  int diverged_count_ = 0;
  bool speculating_ = false;
  std::size_t segment_count_;
  int segment_capacity_;
  int junction_capacity_;
  double present_factor_ = 0.0;
  double penalty_floor_ = 1.0;
  bool track_floor_ = false;
};

class CongestionState {
 public:
  CongestionState(std::size_t segment_count, std::size_t junction_count);

  [[nodiscard]] int segment_load(SegmentId id) const {
    return segment_load_[id.index()];
  }
  [[nodiscard]] int junction_load(JunctionId id) const {
    return junction_load_[id.index()];
  }
  [[nodiscard]] int load(ResourceRef resource) const;

  void acquire(ResourceRef resource);
  /// Throws SimulationError when releasing a resource with zero load.
  void release(ResourceRef resource);

  /// Sum of loads across all resources (diagnostics).
  [[nodiscard]] long long total_load() const;

 private:
  std::vector<int> segment_load_;
  std::vector<int> junction_load_;
};

}  // namespace qspr
