// Dynamic routing-resource state: how many qubits are using — or have
// reserved for imminent use — each channel segment and junction ("n" in the
// paper's Eq. 2). Reservations are taken for a qubit's whole path when its
// instruction is issued and released as the qubit exits each resource, so a
// fully congested channel's edges weigh infinity until somebody leaves.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace qspr {

/// A capacity-limited routing resource: a channel segment or a junction.
struct ResourceRef {
  enum class Kind : std::uint8_t { Segment, Junction };
  Kind kind = Kind::Segment;
  std::int32_t index = -1;

  static ResourceRef segment(SegmentId id) {
    return {Kind::Segment, id.value()};
  }
  static ResourceRef junction(JunctionId id) {
    return {Kind::Junction, id.value()};
  }

  friend bool operator==(const ResourceRef&, const ResourceRef&) = default;
};

class CongestionState {
 public:
  CongestionState(std::size_t segment_count, std::size_t junction_count);

  [[nodiscard]] int segment_load(SegmentId id) const {
    return segment_load_[id.index()];
  }
  [[nodiscard]] int junction_load(JunctionId id) const {
    return junction_load_[id.index()];
  }
  [[nodiscard]] int load(ResourceRef resource) const;

  void acquire(ResourceRef resource);
  /// Throws SimulationError when releasing a resource with zero load.
  void release(ResourceRef resource);

  /// Sum of loads across all resources (diagnostics).
  [[nodiscard]] long long total_load() const;

 private:
  std::vector<int> segment_load_;
  std::vector<int> junction_load_;
};

}  // namespace qspr
