// ALT landmark lower bounds for the negotiated PathFinder searches
// (Goldberg & Harrelson's A*-with-landmarks, applied to the fabric routing
// graph).
//
// K landmark nodes are selected once per fabric by farthest-point iteration
// over the base routing metric, and two distance tables are precomputed per
// landmark L: forward[v]  = d(L -> v) and backward[v] = d(v -> L). The
// triangle inequality then gives, for any query endpoints, per-node lower
// bounds
//
//     d(v, t) >= d(L, t) - d(L, v)      (forward table)
//     d(v, t) >= d(v, L) - d(t, L)      (backward table)
//
// maximised over landmarks and combined (max) with the turn-aware grid
// bound. Unlike the grid bound, the landmark metric counts *every* turn a
// route must take, so it keeps pruning where Manhattan distance goes flat —
// t_turn is 10x t_move, and saturated searches spend their time exploring
// equally-long detours the grid bound cannot distinguish.
//
// Soundness under negotiation. Tables are computed over the *floored base
// metric*: a turn edge costs turn_cost, entering a trap costs t_move, and
// entering any channel/junction node costs floor * t_move, where `floor` is
// an admissible lower bound on the negotiated entering penalty
// (CongestionLedger::penalty_floor; the base tables use floor = 1). Every
// negotiated search weight dominates these weights edge-for-edge whenever
// the live penalty floor is >= the table floor, so the table distances lower
// -bound the negotiated distances and each single-landmark bound is both
// admissible and *consistent* for the search — and a max of consistent
// bounds is consistent (tests/alt_heuristic_test.cpp checks this
// edge-exhaustively for both frontiers).
//
// One deliberate slack: the landmark metric keeps traps as through-nodes
// (queries prune edges into non-endpoint traps, the tables do not). The
// table metric therefore runs on a *supergraph* of every query's search
// graph, which can only lower the distances — admissibility holds for every
// endpoint pair without per-query table work, at the price of a weaker
// bound near trap shortcuts.
//
// Tables are built once per distinct fabric and cached in
// FabricArtifactCache next to the CSR graph. Under negotiation the global
// penalty floor rarely moves (congestion is localised), so the refresh
// trigger keys on the *history* component instead: entering_penalty =
// present * (1 + history) with present >= 1, and history only grows within
// a run, so per-node prices t_move * (1 + history(v)) baked into a rebuilt
// table stay an edge-for-edge lower bound for the rest of the negotiation.
// The loop rebuilds (same landmark set, so deterministically) whenever
// 1 + max_history outgrows the strength of the current tables by
// PathFinderOptions::alt_refresh_threshold — this is what makes the bound
// congestion-aware exactly in the saturated regime where the grid bound
// goes flat.
#pragma once

#include <algorithm>
#include <vector>

#include "route/routing_graph.hpp"
#include "route/search_arena.hpp"

namespace qspr {

/// Precomputed landmark distance tables over one routing graph. Node-major
/// layout: the K distances of node v occupy forward/backward[v*K .. v*K+K),
/// so one bound evaluation reads two contiguous K-vectors per endpoint.
struct LandmarkTables {
  double t_move = 0.0;
  double turn_cost = 0.0;
  /// Penalty floor the tables were built at (>= 1; base tables use 1.0).
  /// Valid for a search iff the live penalty floor is >= this value.
  double floor = 1.0;
  std::vector<RouteNodeId> landmarks;
  std::vector<double> forward;   // forward[v*k+L]  = d(landmark L -> v)
  std::vector<double> backward;  // backward[v*k+L] = d(v -> landmark L)

  [[nodiscard]] int k() const { return static_cast<int>(landmarks.size()); }
  [[nodiscard]] bool empty() const { return landmarks.empty(); }

  /// Start of node v's K-vector in `forward`.
  [[nodiscard]] const double* forward_row(std::size_t v) const {
    return forward.data() + v * landmarks.size();
  }
  [[nodiscard]] const double* backward_row(std::size_t v) const {
    return backward.data() + v * landmarks.size();
  }
};

/// Deterministic farthest-point landmark selection over the base (floor 1)
/// metric: the first landmark is the node farthest from node 0, each next
/// landmark maximises the distance to the already-selected set, ties broken
/// by smallest node index. Returns min(k, node_count) landmarks.
std::vector<RouteNodeId> select_landmarks(const RoutingGraph& graph,
                                          double t_move, double turn_cost,
                                          int k, SearchArena<double>& arena);

/// Builds the forward/backward distance tables of `landmarks` under an
/// arbitrary per-entered-node price vector (2K Dijkstras over the
/// through-trap supergraph, reusing `arena`). The tables lower-bound every
/// search whose non-turn edge weights dominate `node_price` entry-for-entry
/// — the negotiation loop uses this with the monotone history prices
/// t_move * (1 + history(v)), which stay dominated for the rest of the run.
/// Deterministic for a fixed landmark set and price vector.
void build_landmark_tables_priced(const RoutingGraph& graph, double turn_cost,
                                  const std::vector<double>& node_price,
                                  const std::vector<RouteNodeId>& landmarks,
                                  SearchArena<double>& arena,
                                  LandmarkTables& out);

/// Builds the forward/backward distance tables of `landmarks` at penalty
/// floor `floor` (uniform prices: t_move for traps, floor * t_move
/// elsewhere). Deterministic for a fixed landmark set.
void build_landmark_tables(const RoutingGraph& graph, double t_move,
                           double turn_cost, double floor,
                           const std::vector<RouteNodeId>& landmarks,
                           SearchArena<double>& arena, LandmarkTables& out);

/// Selection + table build in one step (the once-per-fabric entry point).
LandmarkTables build_landmark_tables(const RoutingGraph& graph, double t_move,
                                     double turn_cost, int k);

/// Triangle-inequality lower bound on d(from -> to) from the two node-major
/// K-vectors of each endpoint: max over landmarks of
/// max(d(L,to) - d(L,from), d(from,L) - d(to,L), 0).
///
/// Unreachable pairs are handled by IEEE arithmetic: a +inf in the *to*
/// row propagates (the pair really is disconnected — reachability is
/// symmetric here, finite weights both ways), a +inf in the *from* row
/// yields -inf and is clamped by the max with 0, and inf - inf produces a
/// NaN that std::max(h, x) discards (comparison is false, h wins).
[[nodiscard]] inline double alt_lower_bound(const double* from_forward,
                                            const double* from_backward,
                                            const double* to_forward,
                                            const double* to_backward,
                                            int k) {
  double h = 0.0;
  for (int i = 0; i < k; ++i) {
    h = std::max(h, to_forward[i] - from_forward[i]);
    h = std::max(h, from_backward[i] - to_backward[i]);
  }
  return h;
}

}  // namespace qspr
