#include "route/pathfinder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "common/error.hpp"

namespace qspr {

namespace {

/// Dense index for a resource: segments first, then junctions.
class ResourceTable {
 public:
  explicit ResourceTable(const Fabric& fabric)
      : occupancy_(fabric.segment_count() + fabric.junction_count(), 0),
        history_(fabric.segment_count() + fabric.junction_count(), 0.0),
        segment_count_(fabric.segment_count()) {}

  [[nodiscard]] std::size_t index_of(ResourceRef resource) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? static_cast<std::size_t>(resource.index)
               : segment_count_ + static_cast<std::size_t>(resource.index);
  }

  [[nodiscard]] int capacity_of(ResourceRef resource,
                                const TechnologyParams& params) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? params.channel_capacity
               : params.junction_capacity;
  }

  std::vector<int> occupancy_;
  std::vector<double> history_;

 private:
  std::size_t segment_count_;
};

ResourceRef resource_of_node(const RouteNode& node) {
  if (node.is_trap) return ResourceRef{};
  if (node.junction.is_valid()) return ResourceRef::junction(node.junction);
  if (node.segment.is_valid()) return ResourceRef::segment(node.segment);
  return ResourceRef{};
}

struct QueueEntry {
  double cost;
  RouteNodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.node > b.node;
  }
};

/// One negotiated-cost Dijkstra. Over-used resources are allowed but priced.
std::optional<std::vector<RouteNodeId>> route_one(
    const RoutingGraph& graph, const TechnologyParams& params,
    const ResourceTable& table, double present_factor, bool turn_aware,
    TrapId from, TrapId to) {
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) return std::vector<RouteNodeId>{source};

  const std::size_t n = graph.node_count();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<RouteNodeId> parent(n);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;
  dist[source.index()] = 0.0;
  frontier.push({0.0, source});

  while (!frontier.empty()) {
    const QueueEntry entry = frontier.top();
    frontier.pop();
    if (entry.cost > dist[entry.node.index()]) continue;
    if (entry.node == target) break;

    for (const RouteEdge& edge : graph.edges(entry.node)) {
      const RouteNode& v = graph.node(edge.to);
      double weight = 0.0;
      if (edge.is_turn) {
        weight = turn_aware ? static_cast<double>(params.t_turn) : 0.1;
      } else if (v.is_trap) {
        if (v.trap != to) continue;  // traps are endpoints only
        weight = static_cast<double>(params.t_move);
      } else {
        const ResourceRef resource = resource_of_node(v);
        double penalty = 1.0;
        if (resource.index >= 0) {
          const std::size_t index = table.index_of(resource);
          const int capacity = table.capacity_of(resource, params);
          const int over =
              std::max(0, table.occupancy_[index] + 1 - capacity);
          penalty = (1.0 + static_cast<double>(over) * present_factor) *
                    (1.0 + table.history_[index]);
        }
        weight = static_cast<double>(params.t_move) * penalty;
      }
      const double candidate = dist[entry.node.index()] + weight;
      if (candidate < dist[edge.to.index()]) {
        dist[edge.to.index()] = candidate;
        parent[edge.to.index()] = entry.node;
        frontier.push({candidate, edge.to});
      }
    }
  }
  if (!std::isfinite(dist[target.index()])) return std::nullopt;

  std::vector<RouteNodeId> path;
  for (RouteNodeId node = target; node.is_valid();
       node = parent[node.index()]) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Distinct resources a routed path occupies.
std::vector<ResourceRef> resources_of(const RoutedPath& path) {
  std::vector<ResourceRef> resources;
  for (const ResourceUse& use : path.resource_uses) {
    if (std::find(resources.begin(), resources.end(), use.resource) ==
        resources.end()) {
      resources.push_back(use.resource);
    }
  }
  return resources;
}

}  // namespace

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options) {
  params.validate();
  require(options.max_iterations >= 1, "need at least one iteration");

  const Fabric& fabric = graph.fabric();
  ResourceTable table(fabric);
  PathFinderResult result;
  result.paths.resize(nets.size());

  double present_factor = options.present_factor;
  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    result.iterations = iteration;
    // Incremental rip-up: each net is removed from the occupancy, re-routed
    // against the *other* nets' present congestion plus the history costs,
    // and re-inserted (the original PathFinder inner loop).
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (iteration > 1) {
        for (const ResourceRef& resource : resources_of(result.paths[i])) {
          --table.occupancy_[table.index_of(resource)];
        }
      }
      auto nodes = route_one(graph, params, table, present_factor,
                             options.turn_aware, nets[i].from, nets[i].to);
      if (!nodes.has_value()) {
        throw RoutingError("PathFinder: net " + std::to_string(i) +
                           " has no route on this fabric");
      }
      result.paths[i] = lower_path(graph, *nodes, params);
      for (const ResourceRef& resource : resources_of(result.paths[i])) {
        ++table.occupancy_[table.index_of(resource)];
      }
    }

    // Check for over-use; charge history on offenders.
    int overused = 0;
    for (std::size_t index = 0; index < table.occupancy_.size(); ++index) {
      const int capacity = index < fabric.segment_count()
                               ? params.channel_capacity
                               : params.junction_capacity;
      if (table.occupancy_[index] > capacity) {
        ++overused;
        table.history_[index] += options.history_increment;
      }
    }
    result.overused_resources = overused;
    if (overused == 0) {
      result.converged = true;
      break;
    }
    present_factor *= 1.5;  // standard PathFinder schedule
  }

  result.total_delay = 0;
  for (const RoutedPath& path : result.paths) {
    result.total_delay += path.total_delay();
  }
  return result;
}

}  // namespace qspr
