#include "route/pathfinder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/executor.hpp"
#include "route/heuristic.hpp"
#include "route/search_arena.hpp"

namespace qspr {

namespace {

ResourceRef resource_of_node(const RouteNode& node) {
  if (node.is_trap) return ResourceRef{};
  if (node.junction.is_valid()) return ResourceRef::junction(node.junction);
  if (node.segment.is_valid()) return ResourceRef::segment(node.segment);
  return ResourceRef{};
}

/// Negotiated cost of stepping across `edge` into node `v`. Callers prune
/// edges into non-target traps before pricing (traps are endpoints only).
double edge_weight(const RouteNode& v, const RouteEdge& edge,
                   const TechnologyParams& params,
                   const CongestionLedger& ledger, bool turn_aware) {
  if (edge.is_turn) {
    return turn_aware ? static_cast<double>(params.t_turn) : 0.1;
  }
  if (v.is_trap) return static_cast<double>(params.t_move);
  const ResourceRef resource = resource_of_node(v);
  double penalty = 1.0;
  if (resource.index >= 0) {
    penalty = ledger.entering_penalty(ledger.index_of(resource));
  }
  return static_cast<double>(params.t_move) * penalty;
}

}  // namespace

void NodeWeightCache::build(const RoutingGraph& graph,
                            const CongestionLedger& ledger) {
  node_resource.assign(graph.node_count(), -1);
  node_weight.assign(graph.node_count(), 0.0);
  // Keep the inner vectors' capacity across rebuilds (the common case is
  // one scratch serving the same graph for many batches).
  if (resource_nodes.size() < ledger.size()) {
    resource_nodes.resize(ledger.size());
  }
  for (auto& nodes : resource_nodes) nodes.clear();
  for (std::size_t n = 0; n < graph.node_count(); ++n) {
    const ResourceRef resource =
        resource_of_node(graph.node(RouteNodeId::from_index(n)));
    if (resource.index < 0) continue;
    const std::size_t index = ledger.index_of(resource);
    node_resource[n] = static_cast<std::int32_t>(index);
    resource_nodes[index].push_back(static_cast<std::uint32_t>(n));
  }
}

void NodeWeightCache::refresh_all(const CongestionLedger& ledger,
                                  double t_move) {
  t_move_ = t_move;
  for (std::size_t n = 0; n < node_weight.size(); ++n) {
    const std::int32_t index = node_resource[n];
    node_weight[n] =
        index < 0 ? t_move
                  : t_move * ledger.entering_penalty(
                                 static_cast<std::size_t>(index));
  }
}

void NodeWeightCache::refresh_resource(const CongestionLedger& ledger,
                                       std::size_t index) {
  const double weight = t_move_ * ledger.entering_penalty(index);
  for (const std::uint32_t n : resource_nodes[index]) {
    node_weight[n] = weight;
  }
}

void NodeWeightCache::apply_weight(std::size_t index, double weight) {
  for (const std::uint32_t n : resource_nodes[index]) {
    node_weight[n] = weight;
  }
}

namespace {

/// One negotiated-cost Dijkstra — the reference engine. Runs over the shared
/// SearchArena (pushing f = g, so the frontier degenerates to plain
/// Dijkstra order) instead of allocating O(n) dist/parent vectors per query:
/// equivalence benchmarks against the optimized engine now compare search
/// strategy, not allocator noise. Pop order and results are unchanged — the
/// old priority_queue ordered by (cost, node) and the arena frontier orders
/// by (f, g, node) = (cost, cost, node), the same total order.
std::optional<std::vector<RouteNodeId>> route_one_reference(
    const RoutingGraph& graph, const TechnologyParams& params,
    const CongestionLedger& ledger, bool turn_aware, TrapId from, TrapId to,
    SearchArena<double>& arena, long long& nodes_settled) {
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) return std::vector<RouteNodeId>{source};

  arena.begin(graph.node_count());
  arena.relax(source, 0.0, RouteNodeId::invalid());
  arena.heap_push(0.0, 0.0, source);

  bool reached = false;
  while (!arena.heap_empty()) {
    const auto entry = arena.heap_pop();
    // Candidates are pushed only on strict improvement, so a stale entry's g
    // can only exceed the recorded dist: `!=` is the old `>` staleness test.
    if (entry.g != arena.dist(entry.node)) continue;
    ++nodes_settled;
    if (entry.node == target) {
      reached = true;
      break;
    }

    for (const RouteEdge& edge : graph.edges(entry.node)) {
      const RouteNode& v = graph.node(edge.to);
      if (!edge.is_turn && v.is_trap && v.trap != to) {
        continue;  // traps are endpoints only
      }
      const double weight = edge_weight(v, edge, params, ledger, turn_aware);
      const double candidate = entry.g + weight;
      if (candidate < arena.dist(edge.to)) {
        arena.relax(edge.to, candidate, entry.node);
        arena.heap_push(candidate, candidate, edge.to);
      }
    }
  }
  if (!reached) return std::nullopt;

  std::vector<RouteNodeId> path;
  for (RouteNodeId node = target; node.is_valid(); node = arena.parent(node)) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Physics of one optimized search: base move/turn selection costs plus the
/// admissible congestion floor of the current iteration, the (already
/// validity-checked) ALT tables, and the bounded-suboptimality weight.
struct SearchCosts {
  double t_move = 0.0;
  double turn_cost = 0.0;
  double floor = 1.0;
  /// ALT tables whose build floor is <= `floor` (admissible for this
  /// search), or null for the grid bound alone. Selected per query by the
  /// negotiation loop, never inside the search.
  const LandmarkTables* alt = nullptr;
  /// Heuristic inflation w >= 1: the frontier is ordered by g + w*h, so the
  /// returned path costs <= w * optimal. Exactly 1.0 leaves every f-value
  /// bit-identical to the unweighted search.
  double weight = 1.0;
};

/// One negotiated-cost A* over the arena — the optimized unidirectional
/// engine. The (optionally congestion-scaled) grid lower bound focuses the
/// expansion toward the target; the arena makes the per-query state O(1) to
/// reset, and the weight cache makes pricing an edge one array read.
/// Returns false when the target is unreachable; on success fills `path`
/// source-to-target.
bool route_one_astar(const RoutingGraph& graph,
                     const NodeWeightCache& weights, const SearchCosts& costs,
                     TrapId from, TrapId to, SearchArena<double>& arena,
                     std::vector<RouteNodeId>& path,
                     long long& nodes_settled) {
  path.clear();
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) {
    path.push_back(source);
    return true;
  }

  const Position target_cell = graph.node(target).cell;
  // ALT endpoint slices, hoisted: each bound evaluation reads the node's
  // two contiguous K-vectors against these fixed target vectors.
  const int alt_k = costs.alt ? costs.alt->k() : 0;
  const double* target_fwd =
      alt_k ? costs.alt->forward_row(target.index()) : nullptr;
  const double* target_bwd =
      alt_k ? costs.alt->backward_row(target.index()) : nullptr;
  const auto bound = [&](RouteNodeId id, const RouteNode& node) {
    double h = congestion_scaled_bound(node, target_cell, costs.t_move,
                                       costs.turn_cost, costs.floor,
                                       /*moves_end_in_trap=*/true);
    if (alt_k) {
      h = std::max(h, alt_lower_bound(costs.alt->forward_row(id.index()),
                                      costs.alt->backward_row(id.index()),
                                      target_fwd, target_bwd, alt_k));
    }
    return h * costs.weight;
  };

  arena.begin(graph.node_count());
  arena.relax(source, 0.0, RouteNodeId::invalid());
  arena.heap_push(bound(source, graph.node(source)), 0.0, source);

  bool reached = false;
  while (!arena.heap_empty()) {
    const auto entry = arena.heap_pop();
    // Start the next pop's node state + adjacency row on their way while
    // this entry expands; purely a latency hint, never affects the search.
    const RouteNodeId ahead = arena.heap_peek_node();
    arena.prefetch(ahead);
    graph.prefetch_edges(ahead);
    // Pushes happen only on strict improvement, so at most one live entry
    // per node carries g == dist: the comparison alone rejects stale
    // entries, no settled bitmap traffic needed on the hot path.
    if (entry.g != arena.dist(entry.node)) continue;
    ++nodes_settled;
    if (entry.node == target) {
      reached = true;
      break;
    }

    for (const RouteEdge& edge : graph.edges(entry.node)) {
      // Traps are endpoints only; node_resource < 0 identifies them without
      // loading the node record on every edge visit.
      if (!edge.is_turn && edge.to != target &&
          weights.node_resource[edge.to.index()] < 0) {
        continue;
      }
      const double weight = edge.is_turn
                                ? costs.turn_cost
                                : weights.node_weight[edge.to.index()];
      const double candidate = entry.g + weight;
      if (candidate < arena.dist(edge.to)) {
        arena.relax(edge.to, candidate, entry.node);
        arena.heap_push(candidate + bound(edge.to, graph.node(edge.to)),
                        candidate, edge.to);
      }
    }
  }
  if (!reached) return false;

  for (RouteNodeId node = target; node.is_valid(); node = arena.parent(node)) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  return true;
}

/// Bidirectional negotiated-cost A* for long queries. Both frontiers live in
/// the arena (begin_dual); the balanced potential p(v) = (h_f(v) - h_b(v))/2
/// keeps the two searches consistent over the *same* reduced edge costs, so
/// the classic bidirectional-Dijkstra termination applies: stop as soon as
/// the two heap tops sum to at least the best meeting cost found. Edge
/// weights depend only on the node being entered, so a meeting node v splits
/// the path cost exactly into g_f(v) (which pays for entering v) + g_b(v)
/// (which pays for everything after v).
bool route_one_bidirectional(const RoutingGraph& graph,
                             const NodeWeightCache& weights,
                             const SearchCosts& costs, TrapId from, TrapId to,
                             SearchArena<double>& arena,
                             std::vector<RouteNodeId>& path,
                             long long& nodes_settled) {
  path.clear();
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) {
    path.push_back(source);
    return true;
  }

  const Position source_cell = graph.node(source).cell;
  const Position target_cell = graph.node(target).cell;
  const double t_move = costs.t_move;
  const double turn_cost = costs.turn_cost;
  const double floor = costs.floor;
  // Forward bound: remaining path ends inside the target trap. Backward
  // bound: a source->v path ends inside a trap only when v itself is one.
  // The balanced potential stays *unweighted* even under heuristic_weight:
  // inflating it would make reduced edge costs negative and break the
  // settled-frontier invariant; the suboptimality knob instead scales the
  // termination test below.
  //
  // The balanced potential deliberately ignores costs.alt. A stronger
  // one-sided bound does not make balanced bidirectional search cheaper:
  // mixing the near-exact landmark bound into either (or both) sides was
  // measured to *grow* the settled set on long hauls — a corner-to-corner
  // paper-fabric net settles 268 nodes with the grid potential but 601
  // (ALT both sides), 1206 (forward only), and 518 (backward only),
  // because the sharper potential collapses f-values along every
  // near-optimal corridor and delays the heap-top termination test, while
  // the same tables cut the unidirectional search 3.4x. ALT therefore
  // focuses the unidirectional engine only.
  const auto potential = [&](const RouteNode& node) {
    const double h_forward = congestion_scaled_bound(
        node, target_cell, t_move, turn_cost, floor,
        /*moves_end_in_trap=*/true);
    const double h_backward = congestion_scaled_bound(
        node, source_cell, t_move, turn_cost, floor,
        /*moves_end_in_trap=*/node.is_trap);
    return 0.5 * (h_forward - h_backward);
  };

  arena.begin_dual(graph.node_count());
  arena.relax(source, 0.0, RouteNodeId::invalid());
  arena.heap_push(potential(graph.node(source)), 0.0, source);
  arena.relax_b(target, 0.0, RouteNodeId::invalid());
  arena.heap_push_b(-potential(graph.node(target)), 0.0, target);

  double best = std::numeric_limits<double>::infinity();
  RouteNodeId meet = RouteNodeId::invalid();
  const auto consider_meeting = [&](RouteNodeId node, double g_forward,
                                    double g_backward) {
    const double total = g_forward + g_backward;
    if (total < best) {
      best = total;
      meet = node;
    }
  };

  // Drop stale heap heads so the peeked termination keys are accurate.
  const auto prune_forward = [&] {
    while (!arena.heap_empty()) {
      const auto& top = arena.heap_top();
      if (arena.settled(top.node) || top.g != arena.dist(top.node)) {
        arena.heap_pop();
      } else {
        break;
      }
    }
  };
  const auto prune_backward = [&] {
    while (!arena.heap_empty_b()) {
      const auto& top = arena.heap_top_b();
      if (arena.settled_b(top.node) || top.g != arena.dist_b(top.node)) {
        arena.heap_pop_b();
      } else {
        break;
      }
    }
  };

  prune_forward();
  prune_backward();
  while (!arena.heap_empty() && !arena.heap_empty_b()) {
    // Exact termination at weight 1 (w * x == x in IEEE for w == 1.0);
    // under w > 1 the loop stops once best <= w * (sum of heap tops), and
    // the tops lower-bound every path not yet discovered, so the meeting
    // path costs at most w * optimal.
    if (costs.weight * (arena.heap_top().f + arena.heap_top_b().f) >= best) {
      break;
    }
    if (arena.heap_top().f <= arena.heap_top_b().f) {
      const auto entry = arena.heap_pop();
      const RouteNodeId ahead = arena.heap_peek_node();
      arena.prefetch(ahead);
      graph.prefetch_edges(ahead);
      arena.settle(entry.node);
      ++nodes_settled;
      for (const RouteEdge& edge : graph.edges(entry.node)) {
        if (!edge.is_turn && edge.to != target &&
            weights.node_resource[edge.to.index()] < 0) {
          continue;  // traps are endpoints only
        }
        const double weight = edge.is_turn
                                  ? turn_cost
                                  : weights.node_weight[edge.to.index()];
        const double candidate = entry.g + weight;
        if (candidate < arena.dist(edge.to)) {
          arena.relax(edge.to, candidate, entry.node);
          arena.heap_push(candidate + potential(graph.node(edge.to)),
                          candidate, edge.to);
          const double g_backward = arena.dist_b(edge.to);
          if (std::isfinite(g_backward)) {
            consider_meeting(edge.to, candidate, g_backward);
          }
        }
      }
      prune_forward();
    } else {
      const auto entry = arena.heap_pop_b();
      const RouteNodeId ahead = arena.heap_peek_node_b();
      arena.prefetch_b(ahead);
      graph.prefetch_edges(ahead);
      arena.settle_b(entry.node);
      ++nodes_settled;
      // Every move edge into the settled node costs the same (weights price
      // the node being entered), so one cache read covers all of them.
      const double enter_weight = weights.node_weight[entry.node.index()];
      for (const RouteEdge& edge : graph.edges(entry.node)) {
        // Symmetric graph: edge.to -> entry.node exists with the same turn
        // flag, so this relaxes the forward edge (edge.to -> entry.node).
        if (!edge.is_turn && edge.to != source &&
            weights.node_resource[edge.to.index()] < 0) {
          continue;  // only the source trap may start the path
        }
        const double weight = edge.is_turn ? turn_cost : enter_weight;
        const double candidate = entry.g + weight;
        if (candidate < arena.dist_b(edge.to)) {
          arena.relax_b(edge.to, candidate, entry.node);
          arena.heap_push_b(candidate - potential(graph.node(edge.to)),
                            candidate, edge.to);
          const double g_forward = arena.dist(edge.to);
          if (std::isfinite(g_forward)) {
            consider_meeting(edge.to, g_forward, candidate);
          }
        }
      }
      prune_backward();
    }
  }

  if (!meet.is_valid()) return false;

  for (RouteNodeId node = meet; node.is_valid(); node = arena.parent(node)) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  for (RouteNodeId node = arena.parent_b(meet); node.is_valid();
       node = arena.parent_b(node)) {
    path.push_back(node);
    if (node == target) break;
  }
  return true;
}

/// Distinct dense resource indices of a path, deduped in O(P) with the
/// stamped set; the result doubles as the net's rip-up (release) set and as
/// the overlap set the dirty-net worklist intersects with the over-use delta.
void collect_resources(const RoutedPath& path, const CongestionLedger& ledger,
                       StampedSet& membership,
                       std::vector<std::uint32_t>& indices) {
  indices.clear();
  membership.reset(ledger.size());
  for (const ResourceUse& use : path.resource_uses) {
    const std::size_t index = ledger.index_of(use.resource);
    if (membership.insert(index)) {
      indices.push_back(static_cast<std::uint32_t>(index));
    }
  }
}

int manhattan_cells(const RoutingGraph& graph, TrapId from, TrapId to) {
  const Position a = graph.node(graph.trap_node(from)).cell;
  const Position b = graph.node(graph.trap_node(to)).cell;
  return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

/// Provable lower bound on the residual capacity excess of any routing of
/// `nets`: every moving net must cross a port resource of each endpoint
/// trap, so a trap whose endpoint demand exceeds its total port capacity
/// forces that much over-use no matter how paths are negotiated. Per-trap
/// excesses are summed while their port sets stay pairwise disjoint (a sum
/// over shared ports could double-count capacity — overlapping traps fall
/// back to the max single-trap excess), which is what lets the negotiation
/// recognise "stuck at the structural floor" instead of burning the
/// iteration cap when several distinct traps are over-demanded.
int structural_excess_floor(const RoutingGraph& graph,
                            const std::vector<NetRequest>& nets,
                            const CongestionLedger& ledger,
                            StampedSet& claimed_ports,
                            std::vector<int>& trap_demand,
                            std::vector<std::uint32_t>& structural) {
  trap_demand.assign(graph.fabric().trap_count(), 0);
  structural.clear();
  for (const NetRequest& net : nets) {
    if (net.from == net.to) continue;
    ++trap_demand[net.from.index()];
    ++trap_demand[net.to.index()];
  }
  int max_single = 0;
  int disjoint_sum = 0;
  std::vector<std::uint32_t> ports;
  claimed_ports.reset(ledger.size());
  for (std::size_t t = 0; t < trap_demand.size(); ++t) {
    if (trap_demand[t] <= 1) continue;  // a single net can always fit
    int port_capacity = 0;
    ports.clear();
    for (const RouteEdge& edge :
         graph.edges(graph.trap_node(TrapId::from_index(t)))) {
      if (edge.is_turn) continue;
      const ResourceRef resource = resource_of_node(graph.node(edge.to));
      if (resource.index < 0) continue;
      const auto index =
          static_cast<std::uint32_t>(ledger.index_of(resource));
      if (std::find(ports.begin(), ports.end(), index) == ports.end()) {
        port_capacity += ledger.capacity(index);
        ports.push_back(index);
      }
    }
    if (trap_demand[t] <= port_capacity) continue;
    const int excess = trap_demand[t] - port_capacity;
    max_single = std::max(max_single, excess);
    bool overlaps = false;
    for (const std::uint32_t port : ports) {
      overlaps = overlaps || claimed_ports.contains(port);
    }
    if (!overlaps) {
      disjoint_sum += excess;
      for (const std::uint32_t port : ports) claimed_ports.insert(port);
    }
    structural.insert(structural.end(), ports.begin(), ports.end());
  }
  return std::max(max_single, disjoint_sum);
}

/// One wave worker's output for one net: the path it found against the wave
/// snapshot (and its dense resource set), or routed == false when the
/// snapshot state admits no route at all.
struct SpeculativeNet {
  bool routed = false;
  RoutedPath path;
  std::vector<std::uint32_t> resources;
  /// Nodes the speculative search settled; added to the result only when
  /// the path commits (the committed search *is* the serial search, so the
  /// aggregate stays bit-identical at any route_jobs).
  long long settled = 0;
};

PathFinderResult route_nets_negotiated_impl(
    const RoutingGraph& graph, const TechnologyParams& params,
    const std::vector<NetRequest>& nets, const PathFinderOptions& options,
    PathFinderScratch& scratch, Executor* executor,
    PathFinderScratchPool* pool) {
  params.validate();
  require(options.max_iterations >= 1, "need at least one iteration");
  require(options.bidirectional_min_cells >= 0,
          "bidirectional_min_cells must be non-negative");
  require(options.present_factor_max > 0.0,
          "present_factor_max must be positive");
  require(options.route_jobs >= 1, "route_jobs must be at least 1");
  require(options.route_wave_size >= 0,
          "route_wave_size must be non-negative");
  require(options.alt_landmarks >= 0, "alt_landmarks must be non-negative");
  require(options.alt_refresh_threshold > 1.0,
          "alt_refresh_threshold must be > 1");
  require(options.heuristic_weight >= 1.0,
          "heuristic_weight must be >= 1 (1.0 is the exact search)");

  const Fabric& fabric = graph.fabric();
  CongestionLedger ledger(fabric.segment_count(), fabric.junction_count(),
                          params.channel_capacity, params.junction_capacity);
  PathFinderResult result;
  result.paths.resize(nets.size());

  const bool optimized = options.engine == PathFinderEngine::AStarArena;
  // Arena state shared across all nets and all negotiation iterations (and,
  // via the caller-owned scratch, across successive batches on this thread).
  SearchArena<double>& arena = scratch.arena;
  StampedSet& membership = scratch.membership;
  std::vector<RouteNodeId>& node_buffer = scratch.node_buffer;
  // Per-net occupancy sets (dense resource indices): computed once per
  // reroute, reused for the rip-up release of the net's next re-route and
  // for the dirty-net overlap test.
  std::vector<std::vector<std::uint32_t>>& net_resources =
      scratch.net_resources;
  net_resources.assign(nets.size(), {});
  std::vector<std::uint8_t>& dirty = scratch.net_dirty;
  dirty.assign(nets.size(), 1);  // every net routes in iteration 1

  // --- warm start: seed prior paths, dirty-list only the delta ------------
  // Seeded nets enter pre-routed (occupancy acquired before iteration 1)
  // and come off the worklist; a second pass re-dirties any seeded net whose
  // path crosses a resource that is over-used under the *combined* seed
  // occupancy (its congestion neighbourhood changed). Seeding requires the
  // dirty worklist, so the seed is ignored without partial_ripup.
  const WarmStartSeed* warm =
      (options.warm != nullptr && options.partial_ripup &&
       options.warm->paths.size() == nets.size())
          ? options.warm
          : nullptr;
  std::vector<std::uint8_t> warm_kept_flags;
  if (warm != nullptr) {
    // Resume the prior equilibrium's pricing: without its history the
    // dirtied delta re-routes against iteration-1 costs, undercuts the
    // corridors the prior negotiation priced it out of, and the over-use
    // cascade rips up the whole seed (see WarmStartSeed).
    if (warm->history.size() == ledger.size()) {
      ledger.seed_history(warm->history);
    }
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const RoutedPath& seed = warm->paths[i];
      if (seed.nodes.empty() || nets[i].from == nets[i].to) continue;
      if (seed.nodes.front() != graph.trap_node(nets[i].from) ||
          seed.nodes.back() != graph.trap_node(nets[i].to)) {
        continue;  // endpoints changed: this net routes cold
      }
      result.paths[i] = seed;
      collect_resources(result.paths[i], ledger, membership,
                        net_resources[i]);
      for (const std::uint32_t index : net_resources[i]) {
        ledger.acquire(index);
      }
      dirty[i] = 0;
      ++result.warm_seeded;
    }
    warm_kept_flags.assign(nets.size(), 0);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (dirty[i]) continue;
      warm_kept_flags[i] = 1;
      for (const std::uint32_t index : net_resources[i]) {
        if (ledger.is_overused(index)) {
          dirty[i] = 1;
          break;
        }
      }
    }
  }

  if (options.adaptive_schedule) {
    std::vector<std::uint32_t> structural;
    result.min_feasible_excess = structural_excess_floor(
        graph, nets, ledger, membership, scratch.trap_demand, structural);
    ledger.mark_structural(structural);
  }

  const SearchCosts base_costs{
      static_cast<double>(params.t_move),
      options.turn_aware ? static_cast<double>(params.t_turn) : 0.1, 1.0,
      nullptr, options.heuristic_weight};
  NodeWeightCache& weights = scratch.weights;
  if (optimized) weights.build(graph, ledger);
  result.heuristic_weight = options.heuristic_weight;

  // --- ALT landmark bounds (optimized engine only) ------------------------
  // Base (floor 1) tables come from the caller (the per-fabric cache) or
  // are built here; a history-priced rebuild over the *same* landmark set
  // may be triggered per iteration once the accumulated congestion history
  // outgrows the refresh threshold. History only grows within a run, so a
  // rebuilt table stays valid for the rest of the negotiation — no
  // per-query fallback needed.
  const bool use_alt = optimized && options.alt_landmarks > 0;
  const LandmarkTables* alt_base = nullptr;
  scratch.alt_refreshed.landmarks.clear();
  bool alt_refreshed_active = false;
  double alt_table_strength = 1.0;
  if (use_alt) {
    if (options.landmarks != nullptr && !options.landmarks->empty()) {
      alt_base = options.landmarks;
      require(alt_base->forward.size() ==
                  graph.node_count() * alt_base->landmarks.size(),
              "prebuilt landmark tables do not match this graph");
      require(alt_base->t_move == base_costs.t_move &&
                  alt_base->turn_cost == base_costs.turn_cost,
              "prebuilt landmark tables were built for different costs");
      require(alt_base->floor == 1.0,
              "prebuilt landmark tables must be base (floor 1) tables");
    } else {
      build_landmark_tables(graph, base_costs.t_move, base_costs.turn_cost,
                            1.0,
                            select_landmarks(graph, base_costs.t_move,
                                             base_costs.turn_cost,
                                             options.alt_landmarks, arena),
                            arena, scratch.alt_base);
      alt_base = &scratch.alt_base;
    }
    result.landmarks_used = alt_base->k();
  }
  // Freshest valid tables. Reads only state mutated at the serial iteration
  // start, so the wave workers may call it concurrently.
  const auto select_alt = [&]() -> const LandmarkTables* {
    if (!use_alt) return nullptr;
    return alt_refreshed_active ? &scratch.alt_refreshed : alt_base;
  };

  // --- speculative wave state (route_jobs >= 2 on an executor) ------------
  // Speculation is an optimized-engine mechanism: the reference engine
  // always runs the serial loop. A 1-worker executor cannot overlap
  // anything, so it runs the serial loop too instead of paying for
  // speculations it would mostly re-route; likewise a 1-net worklist is
  // routed serially — the first net of a wave always commits, so there is
  // nothing to overlap. None of these gates is observable in the result.
  const bool speculative =
      executor != nullptr && pool != nullptr && optimized &&
      options.route_jobs >= 2 && executor->worker_count() >= 2;
  const int wave_workers = speculative ? executor->worker_count() : 0;
  if (speculative) pool->grow_to(static_cast<std::size_t>(wave_workers));
  // Immutable per-wave copy of the ledger the workers search against;
  // copy-assigned per wave so its buffers are reused.
  std::optional<CongestionLedger> snapshot;
  if (speculative) snapshot.emplace(ledger);
  std::vector<SpeculativeNet> speculated;   // per wave slot, reused
  std::vector<std::size_t> worklist;        // dirty net ids, in net order
  std::vector<std::uint8_t> pool_built;     // per-negotiation weights.build
  std::vector<std::uint8_t> wave_refreshed; // per-wave weights.refresh_all
  if (speculative) {
    pool_built.assign(static_cast<std::size_t>(wave_workers), 0);
    wave_refreshed.assign(static_cast<std::size_t>(wave_workers), 0);
  }

  double present_factor = options.present_factor;
  if (warm != nullptr) {
    // Start the schedule where the prior run left off: re-annealing from
    // iteration-1 pricing would let the dirtied delta over-subscribe freely
    // for several iterations, destabilising the seeded equilibrium.
    present_factor = std::max(present_factor, warm->present_factor);
  }
  double history_increment = options.history_increment;
  // Fewest over-used resources seen so far; partial rip-up escalates to a
  // full sweep when iterations fail to improve on it. A cold run escalates
  // on the first stall (the original schedule, kept bit-identical); a warm
  // run gets several stalled iterations of patience first — it starts from
  // a near-converged state where one wobbling corridor trips the stall test
  // immediately, and a full sweep there rips up the entire seed to fix a
  // two-resource conflict that local negotiation resolves on its own.
  int best_overused = std::numeric_limits<int>::max();
  int ripup_stalls = 0;
  const int ripup_stall_limit = warm != nullptr ? 4 : 1;
  // Stagnation detector: consecutive iterations without any reduction of the
  // total capacity excess.
  int best_excess = std::numeric_limits<int>::max();
  int stagnant_iterations = 0;
  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    result.iterations_used = iteration;
    ledger.begin_iteration(present_factor,
                           optimized && options.adaptive_bound);
    if (optimized) {
      // History charges and the present-factor step repriced (potentially)
      // every loaded resource: refresh the whole weight cache once per
      // iteration, then keep it in sync per ripped/re-inserted resource.
      weights.refresh_all(ledger, base_costs.t_move);
    }
    if (use_alt && options.adaptive_bound) {
      // ALT refresh trigger, evaluated only here — at the serial start of
      // the iteration, where no wave is in flight (the tables are immutable
      // while workers search). The trigger keys on the *history* penalty
      // component: entering_penalty = present * (1 + history) with
      // present >= 1, and history only grows within a run, so per-node
      // prices t_move * (1 + history(v)) baked into the rebuilt tables stay
      // an edge-for-edge lower bound on every later search weight. This is
      // the congestion-aware bound for the saturated regime — there the
      // localised penalties never move the global floor, but the charged
      // history mass keeps climbing.
      const double strength = 1.0 + ledger.max_history();
      if (strength >= alt_table_strength * options.alt_refresh_threshold) {
        scratch.alt_price.resize(graph.node_count());
        for (std::size_t v = 0; v < scratch.alt_price.size(); ++v) {
          const std::int32_t res = weights.node_resource[v];
          scratch.alt_price[v] =
              res < 0 ? base_costs.t_move
                      : base_costs.t_move *
                            (1.0 + ledger.history(
                                       static_cast<std::size_t>(res)));
        }
        build_landmark_tables_priced(graph, base_costs.turn_cost,
                                     scratch.alt_price, alt_base->landmarks,
                                     arena, scratch.alt_refreshed);
        alt_refreshed_active = true;
        alt_table_strength = strength;
        ++result.alt_refreshes;
      }
    }
    // Incremental rip-up: each dirty net is removed from the occupancy,
    // re-routed against the *other* nets' present congestion plus the
    // history costs, and re-inserted. With partial_ripup off every net is
    // dirty every iteration (the original full-sweep PathFinder loop).
    const auto rip_net = [&](std::size_t i) {
      for (const std::uint32_t index : net_resources[i]) {
        ledger.release(index);
        if (optimized) weights.refresh_resource(ledger, index);
      }
    };
    // Search against the *live* ledger and record the result — the serial
    // reference step, also the commit-time fallback of an invalidated
    // speculation. The caller has already ripped net i.
    const auto route_net_live = [&](std::size_t i) {
      bool routed = false;
      if (optimized) {
        SearchCosts costs = base_costs;
        if (options.adaptive_bound) costs.floor = ledger.penalty_floor();
        costs.alt = select_alt();
        const bool long_query =
            options.bidirectional &&
            manhattan_cells(graph, nets[i].from, nets[i].to) >=
                options.bidirectional_min_cells;
        routed = long_query
                     ? route_one_bidirectional(graph, weights, costs,
                                               nets[i].from, nets[i].to,
                                               arena, node_buffer,
                                               result.nodes_settled)
                     : route_one_astar(graph, weights, costs, nets[i].from,
                                       nets[i].to, arena, node_buffer,
                                       result.nodes_settled);
      } else {
        auto nodes = route_one_reference(graph, params, ledger,
                                         options.turn_aware, nets[i].from,
                                         nets[i].to, arena,
                                         result.nodes_settled);
        routed = nodes.has_value();
        if (routed) node_buffer = std::move(*nodes);
      }
      if (!routed) {
        throw RoutingError("PathFinder: net " + std::to_string(i) +
                           " has no route on this fabric");
      }
      result.paths[i] = lower_path(graph, node_buffer, params);
      collect_resources(result.paths[i], ledger, membership,
                        net_resources[i]);
    };
    const auto acquire_net = [&](std::size_t i) {
      for (const std::uint32_t index : net_resources[i]) {
        ledger.acquire(index);
        if (optimized) weights.refresh_resource(ledger, index);
      }
    };

    worklist.clear();
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (dirty[i]) worklist.push_back(i);
    }

    if (!speculative || worklist.size() < 2) {
      // The serial negotiation step. The rip is unconditional: at a cold
      // iteration 1 every occupancy set is empty (a no-op), and a warm-
      // seeded net that re-entered the worklist must release its seed.
      for (const std::size_t i : worklist) {
        rip_net(i);
        ++result.searches_performed;
        if (!warm_kept_flags.empty()) warm_kept_flags[i] = 0;
        route_net_live(i);
        acquire_net(i);
      }
    } else {
      // Speculative waves: route each wave's nets concurrently against an
      // immutable snapshot of the ledger, then commit serially in net
      // order. A speculative path is committed only while the live penalty
      // landscape is still byte-identical to the snapshot (no diverged
      // resource, same admissible floor) — then the snapshot search *is*
      // the serial search, input for input — otherwise the net re-routes on
      // this thread against the true state, exactly as the serial loop
      // would. Either way the committed sequence of releases, searches and
      // acquires equals the serial loop's, so results are bit-identical at
      // any route_jobs / worker count.
      const auto waves = plan_speculation_waves(
          worklist.size(), options.route_jobs, options.route_wave_size);
      for (const auto& [wave_begin, wave_end] : waves) {
        const std::size_t wave_len = wave_end - wave_begin;
        *snapshot = ledger;
        const double wave_floor = snapshot->penalty_floor();
        ledger.begin_speculation();
        if (speculated.size() < wave_len) speculated.resize(wave_len);
        std::fill(wave_refreshed.begin(), wave_refreshed.end(),
                  std::uint8_t{0});

        const Executor::Job wave_job = executor->submit(
            wave_len, [&](std::size_t k, int worker) {
              PathFinderScratch& ws =
                  pool->for_worker(static_cast<std::size_t>(worker));
              if (!pool_built[worker]) {
                ws.weights.build(graph, *snapshot);
                pool_built[worker] = 1;
              }
              if (!wave_refreshed[worker]) {
                ws.weights.refresh_all(*snapshot, base_costs.t_move);
                wave_refreshed[worker] = 1;
              }
              const std::size_t i = worklist[wave_begin + k];
              SpeculativeNet& out = speculated[k];
              out.routed = false;
              out.resources.clear();
              out.settled = 0;
              SearchCosts costs = base_costs;
              // The worker's own rip-up, priced against the snapshot: the
              // serial loop releases net i's old resources before its
              // search, repricing them and min-updating the floor.
              double floor = snapshot->penalty_floor();
              for (const std::uint32_t index : net_resources[i]) {
                const double penalty =
                    snapshot->entering_penalty_after_release(index);
                floor = std::min(floor, penalty);
                ws.weights.apply_weight(index,
                                        base_costs.t_move * penalty);
              }
              if (options.adaptive_bound) costs.floor = floor;
              // Same selection rule the serial loop applies post-rip: on a
              // clean commit the worker's floor equals the serial loop's,
              // so the same tables are chosen and the search is identical.
              costs.alt = select_alt();
              const bool long_query =
                  options.bidirectional &&
                  manhattan_cells(graph, nets[i].from, nets[i].to) >=
                      options.bidirectional_min_cells;
              const bool routed =
                  long_query
                      ? route_one_bidirectional(graph, ws.weights, costs,
                                                nets[i].from, nets[i].to,
                                                ws.arena, ws.node_buffer,
                                                out.settled)
                      : route_one_astar(graph, ws.weights, costs,
                                        nets[i].from, nets[i].to, ws.arena,
                                        ws.node_buffer, out.settled);
              if (routed) {
                out.path = lower_path(graph, ws.node_buffer, params);
                collect_resources(out.path, *snapshot, ws.membership,
                                  out.resources);
                out.routed = true;
              }
              // Restore the snapshot weights for this worker's next net.
              for (const std::uint32_t index : net_resources[i]) {
                ws.weights.apply_weight(
                    index,
                    base_costs.t_move * snapshot->entering_penalty(index));
              }
            });
        executor->wait(wave_job);

        // Serial commit in net order.
        for (std::size_t k = 0; k < wave_len; ++k) {
          const std::size_t i = worklist[wave_begin + k];
          // Decided before net i's own rip-up: the rip applies identically
          // to the snapshot view the worker searched (it priced it in) and
          // to the live ledger, so pre-rip equality implies post-rip
          // equality of every search input, floor included.
          const bool clean = ledger.diverged_count() == 0 &&
                             ledger.penalty_floor() == wave_floor;
          rip_net(i);
          ++result.searches_performed;
          if (!warm_kept_flags.empty()) warm_kept_flags[i] = 0;
          SpeculativeNet& spec = speculated[k];
          if (clean) {
            if (!spec.routed) {
              // Identical inputs: the serial search would fail too.
              throw RoutingError("PathFinder: net " + std::to_string(i) +
                                 " has no route on this fabric");
            }
            result.paths[i] = std::move(spec.path);
            net_resources[i] = std::move(spec.resources);
            result.nodes_settled += spec.settled;
            ++result.speculative_commits;
          } else {
            route_net_live(i);
            ++result.speculative_reroutes;
          }
          acquire_net(i);
        }
        ledger.end_speculation();
      }
    }

    // Charge history on the over-use delta set (no full-table sweep).
    const CongestionLedger::OveruseSummary summary =
        ledger.charge_history(history_increment);
    result.overused_resources = summary.overused;
    result.max_overuse = summary.max_overuse;
    result.total_excess = summary.total_excess;
    if (summary.overused == 0) {
      result.converged = true;
      break;
    }
    if (options.adaptive_schedule) {
      if (summary.total_excess <= result.min_feasible_excess) {
        // Residual over-use has reached the provable structural floor: no
        // negotiation can do better, stop and report instead of burning the
        // remaining iterations on ever-costlier searches.
        break;
      }
      if (summary.total_excess < best_excess) {
        // Only a clear improvement resets the stagnation counter: on a
        // saturated plateau the excess wobbles by +-1 around its floor, and
        // counting that noise as progress keeps the loop flooding for the
        // whole iteration cap.
        const int margin = std::max(1, best_excess / 16);
        if (best_excess - summary.total_excess >= margin) {
          stagnant_iterations = 0;
          history_increment = options.history_increment;
        }
        best_excess = summary.total_excess;
      } else {
        ++stagnant_iterations;
        // A stubborn *tail* (a handful of excess units) yields to ramped
        // permanent pressure: double the history increment until the
        // plateau breaks. Tail iterations are usually cheap — partial
        // rip-up only re-routes the few offending nets — so the ramp gets
        // several multiples of the plateau patience; but a tail that
        // survives even a fully-saturated ramp (e.g. structural over-use
        // the floor under-approximated across overlapping port sets) is
        // stuck, and keeping at it would burn the rest of the cap on
        // escalated full sweeps.
        const int tail =
            std::max(4, static_cast<int>(nets.size()) / 2);
        if (summary.total_excess <= tail) {
          history_increment = std::min(history_increment * 2.0,
                                       options.history_increment * 64.0);
          if (options.stagnation_limit > 0 &&
              stagnant_iterations >= 6 * options.stagnation_limit) {
            break;
          }
        } else if (options.stagnation_limit > 0 &&
                   stagnant_iterations >= options.stagnation_limit) {
          // A saturated *plateau* (excess comparable to the net count) is
          // the signature of regional over-subscription: ramping only
          // destabilises it, and every extra iteration is a whole-fabric
          // flood per net. Stop and report the residual.
          break;
        }
      }
    }
    if (options.partial_ripup) {
      const bool stalled = summary.overused >= best_overused;
      ripup_stalls = stalled ? ripup_stalls + 1 : 0;
      if (ripup_stalls >= ripup_stall_limit) {
        // Stagnation: the dirty subset is ping-ponging among the contested
        // corridors while clean nets pin the alternatives. Escalate to one
        // full rip-up sweep so the whole net set renegotiates, then resume
        // partial sweeps.
        std::fill(dirty.begin(), dirty.end(), std::uint8_t{1});
        ripup_stalls = 0;
      } else if (stalled) {
        // Stalled but under the patience limit (warm runs only): keep the
        // worklist local — nets crossing negotiable over-used resources —
        // and let the charged history break the tie.
        for (std::size_t i = 0; i < nets.size(); ++i) {
          dirty[i] = 0;
          for (const std::uint32_t index : net_resources[i]) {
            if (ledger.is_overused(index) && !ledger.is_structural(index)) {
              dirty[i] = 1;
              break;
            }
          }
        }
      } else {
        // Next iteration's worklist: exactly the nets whose current path
        // crosses a *negotiable* over-subscribed resource. Structural
        // over-use (endpoint port demand above capacity) cannot be routed
        // away, so the nets forced through it are left settled instead of
        // churning the whole region every iteration. Any negotiable
        // overused resource is held by at least one net, so the worklist
        // can never stall while removable over-use remains.
        for (std::size_t i = 0; i < nets.size(); ++i) {
          dirty[i] = 0;
          for (const std::uint32_t index : net_resources[i]) {
            if (ledger.is_overused(index) && !ledger.is_structural(index)) {
              dirty[i] = 1;
              break;
            }
          }
        }
      }
      best_overused = std::min(best_overused, summary.overused);
    }
    present_factor *= 1.5;  // standard PathFinder schedule
    if (options.adaptive_schedule) {
      // Cap the schedule once saturated: beyond the ceiling, the (ramped)
      // history carries the pressure, and edge weights stay commensurate
      // with the admissible distance bound instead of drowning it.
      // Converging runs never reach the ceiling.
      present_factor = std::min(present_factor, options.present_factor_max);
    }
  }

  if (warm != nullptr && !result.converged) {
    // The warm attempt dug in without converging: the edit shifted the
    // equilibrium beyond what local renegotiation absorbs (the seeded
    // history now mostly mis-prices the new instance). Restart cold — the
    // recursive run is bit-identical to a never-seeded call — and surface
    // the abandoned attempt's cost in the counters instead of hiding it.
    PathFinderOptions cold_options = options;
    cold_options.warm = nullptr;
    PathFinderResult cold = route_nets_negotiated_impl(
        graph, params, nets, cold_options, scratch, executor, pool);
    cold.searches_performed += result.searches_performed;
    cold.nodes_settled += result.nodes_settled;
    cold.iterations_used += result.iterations_used;
    cold.alt_refreshes += result.alt_refreshes;
    cold.speculative_commits += result.speculative_commits;
    cold.speculative_reroutes += result.speculative_reroutes;
    cold.warm_seeded = result.warm_seeded;
    cold.warm_kept = 0;
    cold.warm_restarted = true;
    return cold;
  }

  result.total_delay = 0;
  for (const RoutedPath& path : result.paths) {
    result.total_delay += path.total_delay();
  }
  for (const std::uint8_t kept : warm_kept_flags) {
    result.warm_kept += kept;
  }
  // Export the negotiation state a future warm start needs to resume this
  // equilibrium. Convergence and the adaptive breaks leave the loop before
  // the schedule step, so present_factor holds the final iteration's value
  // (an exhausted iteration cap leaves it one step ahead, which only firms
  // the next warm start).
  result.history = ledger.history_table();
  result.final_present_factor = present_factor;
  return result;
}

}  // namespace

WarmStartSeed make_warm_seed(const std::vector<NetRequest>& prior_nets,
                             const std::vector<RoutedPath>& prior_paths,
                             const std::vector<NetRequest>& nets,
                             std::vector<double> prior_history,
                             double prior_present_factor) {
  WarmStartSeed seed;
  seed.history = std::move(prior_history);
  seed.present_factor = prior_present_factor;
  seed.paths.resize(nets.size());
  if (prior_nets.size() != prior_paths.size()) return seed;
  std::vector<std::uint8_t> claimed(prior_nets.size(), 0);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (std::size_t j = 0; j < prior_nets.size(); ++j) {
      if (claimed[j] || prior_nets[j].from != nets[i].from ||
          prior_nets[j].to != nets[i].to) {
        continue;
      }
      seed.paths[i] = prior_paths[j];
      claimed[j] = 1;
      break;
    }
  }
  return seed;
}

std::vector<std::pair<std::size_t, std::size_t>> plan_speculation_waves(
    std::size_t worklist_size, int route_jobs, int wave_size) {
  std::vector<std::pair<std::size_t, std::size_t>> waves;
  if (worklist_size == 0) return waves;
  const auto jobs = static_cast<std::size_t>(std::max(1, route_jobs));
  // Auto sizing: enough nets per snapshot to keep every worker busy a few
  // times over, small enough that the snapshot refreshes before commits
  // drift far from it.
  std::size_t size =
      wave_size > 0 ? static_cast<std::size_t>(wave_size) : 4 * jobs;
  size = std::max<std::size_t>(size, 2);
  for (std::size_t begin = 0; begin < worklist_size; begin += size) {
    waves.emplace_back(begin, std::min(worklist_size, begin + size));
  }
  return waves;
}

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options) {
  PathFinderScratch scratch;
  return route_nets_negotiated_impl(graph, params, nets, options, scratch,
                                    nullptr, nullptr);
}

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch) {
  return route_nets_negotiated_impl(graph, params, nets, options, scratch,
                                    nullptr, nullptr);
}

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch,
                                       Executor& executor,
                                       PathFinderScratchPool& pool) {
  return route_nets_negotiated_impl(graph, params, nets, options, scratch,
                                    &executor, &pool);
}

}  // namespace qspr
