#include "route/pathfinder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>

#include "common/error.hpp"
#include "route/heuristic.hpp"
#include "route/search_arena.hpp"

namespace qspr {

namespace {

/// Dense index for a resource: segments first, then junctions.
class ResourceTable {
 public:
  explicit ResourceTable(const Fabric& fabric)
      : occupancy_(fabric.segment_count() + fabric.junction_count(), 0),
        history_(fabric.segment_count() + fabric.junction_count(), 0.0),
        segment_count_(fabric.segment_count()) {}

  [[nodiscard]] std::size_t size() const { return occupancy_.size(); }

  [[nodiscard]] std::size_t index_of(ResourceRef resource) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? static_cast<std::size_t>(resource.index)
               : segment_count_ + static_cast<std::size_t>(resource.index);
  }

  [[nodiscard]] int capacity_of(ResourceRef resource,
                                const TechnologyParams& params) const {
    return resource.kind == ResourceRef::Kind::Segment
               ? params.channel_capacity
               : params.junction_capacity;
  }

  std::vector<int> occupancy_;
  std::vector<double> history_;

 private:
  std::size_t segment_count_;
};

ResourceRef resource_of_node(const RouteNode& node) {
  if (node.is_trap) return ResourceRef{};
  if (node.junction.is_valid()) return ResourceRef::junction(node.junction);
  if (node.segment.is_valid()) return ResourceRef::segment(node.segment);
  return ResourceRef{};
}

/// Negotiated cost of stepping across `edge` into node `v`. Callers prune
/// edges into non-target traps before pricing (traps are endpoints only).
double edge_weight(const RouteNode& v, const RouteEdge& edge,
                   const TechnologyParams& params, const ResourceTable& table,
                   double present_factor, bool turn_aware) {
  if (edge.is_turn) {
    return turn_aware ? static_cast<double>(params.t_turn) : 0.1;
  }
  if (v.is_trap) return static_cast<double>(params.t_move);
  const ResourceRef resource = resource_of_node(v);
  double penalty = 1.0;
  if (resource.index >= 0) {
    const std::size_t index = table.index_of(resource);
    const int capacity = table.capacity_of(resource, params);
    const int over = std::max(0, table.occupancy_[index] + 1 - capacity);
    penalty = (1.0 + static_cast<double>(over) * present_factor) *
              (1.0 + table.history_[index]);
  }
  return static_cast<double>(params.t_move) * penalty;
}

struct QueueEntry {
  double cost;
  RouteNodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.node > b.node;
  }
};

/// One negotiated-cost Dijkstra — the reference engine. Allocates its O(n)
/// state per query; kept verbatim as the equivalence baseline the optimized
/// A* engine is tested and benchmarked against.
std::optional<std::vector<RouteNodeId>> route_one_reference(
    const RoutingGraph& graph, const TechnologyParams& params,
    const ResourceTable& table, double present_factor, bool turn_aware,
    TrapId from, TrapId to) {
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) return std::vector<RouteNodeId>{source};

  const std::size_t n = graph.node_count();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<RouteNodeId> parent(n);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>
      frontier;
  dist[source.index()] = 0.0;
  frontier.push({0.0, source});

  while (!frontier.empty()) {
    const QueueEntry entry = frontier.top();
    frontier.pop();
    if (entry.cost > dist[entry.node.index()]) continue;
    if (entry.node == target) break;

    for (const RouteEdge& edge : graph.edges(entry.node)) {
      const RouteNode& v = graph.node(edge.to);
      if (!edge.is_turn && v.is_trap && v.trap != to) {
        continue;  // traps are endpoints only
      }
      const double weight = edge_weight(v, edge, params, table,
                                        present_factor, turn_aware);
      const double candidate = dist[entry.node.index()] + weight;
      if (candidate < dist[edge.to.index()]) {
        dist[edge.to.index()] = candidate;
        parent[edge.to.index()] = entry.node;
        frontier.push({candidate, edge.to});
      }
    }
  }
  if (!std::isfinite(dist[target.index()])) return std::nullopt;

  std::vector<RouteNodeId> path;
  for (RouteNodeId node = target; node.is_valid();
       node = parent[node.index()]) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// One negotiated-cost A* over the arena — the optimized engine. The grid
/// lower bound focuses the expansion toward the target; the arena makes the
/// per-query state O(1) to reset. Returns false when the target is
/// unreachable; on success fills `path` source-to-target.
bool route_one_astar(const RoutingGraph& graph, const TechnologyParams& params,
                     const ResourceTable& table, double present_factor,
                     bool turn_aware, TrapId from, TrapId to,
                     SearchArena<double>& arena,
                     std::vector<RouteNodeId>& path) {
  path.clear();
  const RouteNodeId source = graph.trap_node(from);
  const RouteNodeId target = graph.trap_node(to);
  if (source == target) {
    path.push_back(source);
    return true;
  }

  const Position target_cell = graph.node(target).cell;
  const double t_move = static_cast<double>(params.t_move);
  const double turn_cost =
      turn_aware ? static_cast<double>(params.t_turn) : 0.1;

  arena.begin(graph.node_count());
  arena.relax(source, 0.0, RouteNodeId::invalid());
  arena.heap_push(
      grid_lower_bound(graph.node(source), target_cell, t_move, turn_cost),
      0.0, source);

  while (!arena.heap_empty()) {
    const auto entry = arena.heap_pop();
    if (arena.settled(entry.node) || entry.g != arena.dist(entry.node)) {
      continue;
    }
    arena.settle(entry.node);
    if (entry.node == target) break;

    for (const RouteEdge& edge : graph.edges(entry.node)) {
      const RouteNode& v = graph.node(edge.to);
      if (!edge.is_turn && v.is_trap && v.trap != to) {
        continue;  // traps are endpoints only
      }
      const double weight = edge_weight(v, edge, params, table,
                                        present_factor, turn_aware);
      const double candidate = entry.g + weight;
      if (candidate < arena.dist(edge.to)) {
        arena.relax(edge.to, candidate, entry.node);
        arena.heap_push(
            candidate +
                grid_lower_bound(v, target_cell, t_move, turn_cost),
            candidate, edge.to);
      }
    }
  }
  if (!arena.settled(target)) return false;

  for (RouteNodeId node = target; node.is_valid(); node = arena.parent(node)) {
    path.push_back(node);
    if (node == source) break;
  }
  std::reverse(path.begin(), path.end());
  return true;
}

/// Distinct resources a routed path occupies — reference O(P²) dedup.
std::vector<ResourceRef> resources_of_reference(const RoutedPath& path) {
  std::vector<ResourceRef> resources;
  for (const ResourceUse& use : path.resource_uses) {
    if (std::find(resources.begin(), resources.end(), use.resource) ==
        resources.end()) {
      resources.push_back(use.resource);
    }
  }
  return resources;
}

/// Distinct dense resource indices of a path, deduped in O(P) with the
/// stamped set; the result doubles as the net's rip-up (decrement) set for
/// the next negotiation iteration.
void collect_resources(const RoutedPath& path, const ResourceTable& table,
                       StampedSet& membership,
                       std::vector<std::uint32_t>& indices) {
  indices.clear();
  membership.reset(table.size());
  for (const ResourceUse& use : path.resource_uses) {
    const std::size_t index = table.index_of(use.resource);
    if (membership.insert(index)) {
      indices.push_back(static_cast<std::uint32_t>(index));
    }
  }
}

}  // namespace

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options) {
  PathFinderScratch scratch;
  return route_nets_negotiated(graph, params, nets, options, scratch);
}

PathFinderResult route_nets_negotiated(const RoutingGraph& graph,
                                       const TechnologyParams& params,
                                       const std::vector<NetRequest>& nets,
                                       const PathFinderOptions& options,
                                       PathFinderScratch& scratch) {
  params.validate();
  require(options.max_iterations >= 1, "need at least one iteration");

  const Fabric& fabric = graph.fabric();
  ResourceTable table(fabric);
  PathFinderResult result;
  result.paths.resize(nets.size());

  const bool optimized = options.engine == PathFinderEngine::AStarArena;
  // Arena state shared across all nets and all negotiation iterations (and,
  // via the caller-owned scratch, across successive batches on this thread).
  SearchArena<double>& arena = scratch.arena;
  StampedSet& membership = scratch.membership;
  std::vector<RouteNodeId>& node_buffer = scratch.node_buffer;
  // Per-net occupancy sets (dense resource indices): computed once per
  // reroute, reused for the rip-up decrement of the following iteration.
  std::vector<std::vector<std::uint32_t>>& net_resources =
      scratch.net_resources;
  net_resources.assign(nets.size(), {});

  double present_factor = options.present_factor;
  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    result.iterations = iteration;
    // Incremental rip-up: each net is removed from the occupancy, re-routed
    // against the *other* nets' present congestion plus the history costs,
    // and re-inserted (the original PathFinder inner loop).
    for (std::size_t i = 0; i < nets.size(); ++i) {
      if (optimized) {
        if (iteration > 1) {
          for (const std::uint32_t index : net_resources[i]) {
            --table.occupancy_[index];
          }
        }
        if (!route_one_astar(graph, params, table, present_factor,
                             options.turn_aware, nets[i].from, nets[i].to,
                             arena, node_buffer)) {
          throw RoutingError("PathFinder: net " + std::to_string(i) +
                             " has no route on this fabric");
        }
        result.paths[i] = lower_path(graph, node_buffer, params);
        collect_resources(result.paths[i], table, membership,
                          net_resources[i]);
        for (const std::uint32_t index : net_resources[i]) {
          ++table.occupancy_[index];
        }
      } else {
        if (iteration > 1) {
          for (const ResourceRef& resource :
               resources_of_reference(result.paths[i])) {
            --table.occupancy_[table.index_of(resource)];
          }
        }
        auto nodes =
            route_one_reference(graph, params, table, present_factor,
                                options.turn_aware, nets[i].from, nets[i].to);
        if (!nodes.has_value()) {
          throw RoutingError("PathFinder: net " + std::to_string(i) +
                             " has no route on this fabric");
        }
        result.paths[i] = lower_path(graph, *nodes, params);
        for (const ResourceRef& resource :
             resources_of_reference(result.paths[i])) {
          ++table.occupancy_[table.index_of(resource)];
        }
      }
    }

    // Check for over-use; charge history on offenders.
    int overused = 0;
    for (std::size_t index = 0; index < table.occupancy_.size(); ++index) {
      const int capacity = index < fabric.segment_count()
                               ? params.channel_capacity
                               : params.junction_capacity;
      if (table.occupancy_[index] > capacity) {
        ++overused;
        table.history_[index] += options.history_increment;
      }
    }
    result.overused_resources = overused;
    if (overused == 0) {
      result.converged = true;
      break;
    }
    present_factor *= 1.5;  // standard PathFinder schedule
  }

  result.total_delay = 0;
  for (const RoutedPath& path : result.paths) {
    result.total_delay += path.total_delay();
  }
  return result;
}

}  // namespace qspr
