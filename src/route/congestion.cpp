#include "route/congestion.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qspr {

CongestionLedger::CongestionLedger(std::size_t segment_count,
                                   std::size_t junction_count,
                                   int segment_capacity, int junction_capacity)
    : occupancy_(segment_count + junction_count, 0),
      history_(segment_count + junction_count, 0.0),
      overused_pos_(segment_count + junction_count, -1),
      segment_count_(segment_count),
      segment_capacity_(segment_capacity),
      junction_capacity_(junction_capacity) {
  require(segment_capacity >= 1 && junction_capacity >= 1,
          "resource capacities must be at least 1");
}

void CongestionLedger::begin_iteration(double present_factor,
                                       bool track_floor) {
  present_factor_ = present_factor;
  track_floor_ = track_floor;
  penalty_floor_ = 1.0;
  if (!track_floor_ || occupancy_.empty()) return;
  double floor = entering_penalty(0);
  for (std::size_t i = 1; i < occupancy_.size(); ++i) {
    floor = std::min(floor, entering_penalty(i));
  }
  penalty_floor_ = std::max(1.0, floor);
}

void CongestionLedger::acquire(std::size_t index) {
  const int occupancy = ++occupancy_[index];
  if (speculating_) update_divergence(index, occupancy - 1, occupancy);
  if (occupancy > capacity(index) && overused_pos_[index] < 0) {
    overused_pos_[index] = static_cast<std::int32_t>(overused_.size());
    overused_.push_back(static_cast<std::uint32_t>(index));
  }
}

void CongestionLedger::release(std::size_t index) {
  const int occupancy = --occupancy_[index];
  if (speculating_) update_divergence(index, occupancy + 1, occupancy);
  if (occupancy <= capacity(index) && overused_pos_[index] >= 0) {
    const std::int32_t pos = overused_pos_[index];
    const std::uint32_t last = overused_.back();
    overused_[static_cast<std::size_t>(pos)] = last;
    overused_pos_[last] = pos;
    overused_.pop_back();
    overused_pos_[index] = -1;
  }
  // Occupancy decrements can lower a resource's penalty below the floor
  // computed at iteration start; min-updating here keeps the floor a true
  // lower bound throughout the iteration (increments only raise penalties).
  if (track_floor_) {
    penalty_floor_ =
        std::max(1.0, std::min(penalty_floor_, entering_penalty(index)));
  }
}

void CongestionLedger::begin_speculation() {
  speculation_base_ = occupancy_;  // copy-assign reuses capacity per wave
  diverged_count_ = 0;
  speculating_ = true;
}

void CongestionLedger::end_speculation() { speculating_ = false; }

void CongestionLedger::update_divergence(std::size_t index, int old_occupancy,
                                         int new_occupancy) {
  // Penalties within one iteration depend on occupancy alone, and two
  // occupancies price identically iff equal or both below capacity.
  const int base = speculation_base_[index];
  const int cap = capacity(index);
  const bool was = old_occupancy != base && std::max(old_occupancy, base) >= cap;
  const bool now = new_occupancy != base && std::max(new_occupancy, base) >= cap;
  diverged_count_ += static_cast<int>(now) - static_cast<int>(was);
}

void CongestionLedger::mark_structural(
    const std::vector<std::uint32_t>& indices) {
  if (indices.empty()) return;
  structural_.assign(occupancy_.size(), 0);
  for (const std::uint32_t index : indices) structural_[index] = 1;
}

void CongestionLedger::seed_history(const std::vector<double>& history) {
  require(history.size() == history_.size(),
          "history seed size does not match the resource table");
  history_ = history;
  max_history_ = 0.0;
  for (const double value : history_) {
    max_history_ = std::max(max_history_, value);
  }
}

CongestionLedger::OveruseSummary CongestionLedger::charge_history(
    double history_increment) {
  OveruseSummary summary;
  summary.overused = static_cast<int>(overused_.size());
  for (const std::uint32_t index : overused_) {
    if (!is_structural(index)) {
      history_[index] += history_increment;
      max_history_ = std::max(max_history_, history_[index]);
    }
    const int excess = occupancy_[index] - capacity(index);
    summary.max_overuse = std::max(summary.max_overuse, excess);
    summary.total_excess += excess;
  }
  return summary;
}

CongestionState::CongestionState(std::size_t segment_count,
                                 std::size_t junction_count)
    : segment_load_(segment_count, 0), junction_load_(junction_count, 0) {}

int CongestionState::load(ResourceRef resource) const {
  require(resource.index >= 0, "invalid resource");
  if (resource.kind == ResourceRef::Kind::Segment) {
    return segment_load_[static_cast<std::size_t>(resource.index)];
  }
  return junction_load_[static_cast<std::size_t>(resource.index)];
}

void CongestionState::acquire(ResourceRef resource) {
  require(resource.index >= 0, "invalid resource");
  auto& table = resource.kind == ResourceRef::Kind::Segment ? segment_load_
                                                            : junction_load_;
  ++table[static_cast<std::size_t>(resource.index)];
}

void CongestionState::release(ResourceRef resource) {
  require(resource.index >= 0, "invalid resource");
  auto& table = resource.kind == ResourceRef::Kind::Segment ? segment_load_
                                                            : junction_load_;
  int& load = table[static_cast<std::size_t>(resource.index)];
  if (load <= 0) {
    throw SimulationError("releasing a routing resource with zero load");
  }
  --load;
}

long long CongestionState::total_load() const {
  return std::accumulate(segment_load_.begin(), segment_load_.end(), 0LL) +
         std::accumulate(junction_load_.begin(), junction_load_.end(), 0LL);
}

}  // namespace qspr
