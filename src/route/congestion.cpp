#include "route/congestion.hpp"

#include <numeric>

#include "common/error.hpp"

namespace qspr {

CongestionState::CongestionState(std::size_t segment_count,
                                 std::size_t junction_count)
    : segment_load_(segment_count, 0), junction_load_(junction_count, 0) {}

int CongestionState::load(ResourceRef resource) const {
  require(resource.index >= 0, "invalid resource");
  if (resource.kind == ResourceRef::Kind::Segment) {
    return segment_load_[static_cast<std::size_t>(resource.index)];
  }
  return junction_load_[static_cast<std::size_t>(resource.index)];
}

void CongestionState::acquire(ResourceRef resource) {
  require(resource.index >= 0, "invalid resource");
  auto& table = resource.kind == ResourceRef::Kind::Segment ? segment_load_
                                                            : junction_load_;
  ++table[static_cast<std::size_t>(resource.index)];
}

void CongestionState::release(ResourceRef resource) {
  require(resource.index >= 0, "invalid resource");
  auto& table = resource.kind == ResourceRef::Kind::Segment ? segment_load_
                                                            : junction_load_;
  int& load = table[static_cast<std::size_t>(resource.index)];
  if (load <= 0) {
    throw SimulationError("releasing a routing resource with zero load");
  }
  --load;
}

long long CongestionState::total_load() const {
  return std::accumulate(segment_load_.begin(), segment_load_.end(), 0LL) +
         std::accumulate(junction_load_.begin(), junction_load_.end(), 0LL);
}

}  // namespace qspr
