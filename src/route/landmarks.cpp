#include "route/landmarks.hpp"

#include <cmath>
#include <limits>

namespace qspr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One Dijkstra over the through-trap supergraph under per-entered-node
/// prices, filling `dist` with d(source -> v) (forward) or d(v -> source)
/// (backward). The graph is symmetric with per-entered-node move weights, so
/// the backward (reverse-graph) relaxation walks the same CSR rows and
/// simply prices the node being *exited* in forward terms — the node every
/// reversed edge enters.
void dijkstra_supergraph(const RoutingGraph& graph, double turn_cost,
                         const std::vector<double>& node_price,
                         RouteNodeId source, bool backward,
                         SearchArena<double>& arena,
                         std::vector<double>& dist) {
  const std::size_t n = graph.node_count();
  arena.begin(n);
  arena.relax(source, 0.0, RouteNodeId::invalid());
  arena.heap_push(0.0, 0.0, source);
  while (!arena.heap_empty()) {
    const auto entry = arena.heap_pop();
    // One-pop-ahead prefetch; a pure latency hint over these 2K+K full
    // sweeps, which touch every CSR row per source.
    const RouteNodeId ahead = arena.heap_peek_node();
    arena.prefetch(ahead);
    graph.prefetch_edges(ahead);
    if (entry.g != arena.dist(entry.node)) continue;  // stale heap entry
    const double exit_price = backward ? node_price[entry.node.index()] : 0.0;
    for (const RouteEdge& edge : graph.edges(entry.node)) {
      const double weight =
          edge.is_turn
              ? turn_cost
              : (backward ? exit_price : node_price[edge.to.index()]);
      const double candidate = entry.g + weight;
      if (candidate < arena.dist(edge.to)) {
        arena.relax(edge.to, candidate, entry.node);
        arena.heap_push(candidate, candidate, edge.to);
      }
    }
  }
  dist.assign(n, kInf);
  for (std::size_t v = 0; v < n; ++v) {
    dist[v] = arena.dist(RouteNodeId::from_index(v));
  }
}

/// Floored base-metric prices: traps cost a flat t_move (trap entries carry
/// no congestion penalty), channel/junction nodes cost floor * t_move
/// (floor lower-bounds every negotiated penalty).
std::vector<double> floored_prices(const RoutingGraph& graph, double t_move,
                                   double floor) {
  std::vector<double> prices(graph.node_count());
  for (std::size_t v = 0; v < prices.size(); ++v) {
    prices[v] =
        graph.node(RouteNodeId::from_index(v)).is_trap ? t_move
                                                       : floor * t_move;
  }
  return prices;
}

}  // namespace

std::vector<RouteNodeId> select_landmarks(const RoutingGraph& graph,
                                          double t_move, double turn_cost,
                                          int k, SearchArena<double>& arena) {
  std::vector<RouteNodeId> landmarks;
  const std::size_t n = graph.node_count();
  if (k <= 0 || n == 0) return landmarks;

  // Distance from the growing landmark set; seeded by node 0 so the first
  // pick is the node farthest from an arbitrary anchor (the classic
  // farthest-point bootstrap). Ascending scan + strict > keeps ties on the
  // smallest node index, making the selection platform-deterministic.
  const std::vector<double> prices = floored_prices(graph, t_move, 1.0);
  std::vector<double> from_set;
  dijkstra_supergraph(graph, turn_cost, prices, RouteNodeId::from_index(0),
                      /*backward=*/false, arena, from_set);
  std::vector<double> from_landmark;
  while (landmarks.size() < static_cast<std::size_t>(k)) {
    std::size_t best = n;
    double best_dist = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const double d = from_set[v];
      if (std::isfinite(d) && d > best_dist) {
        best_dist = d;
        best = v;
      }
    }
    if (best == n) break;  // every remaining node is co-located or unreachable
    const RouteNodeId landmark = RouteNodeId::from_index(best);
    landmarks.push_back(landmark);
    if (landmarks.size() == static_cast<std::size_t>(k)) break;
    dijkstra_supergraph(graph, turn_cost, prices, landmark,
                        /*backward=*/false, arena, from_landmark);
    for (std::size_t v = 0; v < n; ++v) {
      from_set[v] = std::min(from_set[v], from_landmark[v]);
    }
  }
  return landmarks;
}

void build_landmark_tables_priced(const RoutingGraph& graph, double turn_cost,
                                  const std::vector<double>& node_price,
                                  const std::vector<RouteNodeId>& landmarks,
                                  SearchArena<double>& arena,
                                  LandmarkTables& out) {
  out.turn_cost = turn_cost;
  out.landmarks = landmarks;
  const std::size_t n = graph.node_count();
  const std::size_t k = landmarks.size();
  out.forward.assign(n * k, kInf);
  out.backward.assign(n * k, kInf);
  std::vector<double> dist;
  for (std::size_t i = 0; i < k; ++i) {
    dijkstra_supergraph(graph, turn_cost, node_price, landmarks[i],
                        /*backward=*/false, arena, dist);
    for (std::size_t v = 0; v < n; ++v) out.forward[v * k + i] = dist[v];
    dijkstra_supergraph(graph, turn_cost, node_price, landmarks[i],
                        /*backward=*/true, arena, dist);
    for (std::size_t v = 0; v < n; ++v) out.backward[v * k + i] = dist[v];
  }
}

void build_landmark_tables(const RoutingGraph& graph, double t_move,
                           double turn_cost, double floor,
                           const std::vector<RouteNodeId>& landmarks,
                           SearchArena<double>& arena, LandmarkTables& out) {
  build_landmark_tables_priced(graph, turn_cost,
                               floored_prices(graph, t_move, floor),
                               landmarks, arena, out);
  out.t_move = t_move;
  out.floor = floor;
}

LandmarkTables build_landmark_tables(const RoutingGraph& graph, double t_move,
                                     double turn_cost, int k) {
  SearchArena<double> arena;
  LandmarkTables tables;
  build_landmark_tables(graph, t_move, turn_cost, 1.0,
                        select_landmarks(graph, t_move, turn_cost, k, arena),
                        arena, tables);
  return tables;
}

}  // namespace qspr
