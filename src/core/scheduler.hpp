// Instruction scheduling (paper §III and the prior-art policies of §I).
//
// The scheduling problem is Minimum-Latency Resource-Constrained, with the
// twist that instruction delays are only fully known after placement and
// routing; the approach (shared by QSPR and the prior tools) is a dynamic
// list schedule: among ready instructions, issue in a fixed priority order
// and re-evaluate after each routed instruction. This module computes that
// priority order ("rank": 0 issues first) for each policy:
//
//   QsprPriority — alpha * (# transitive dependents)
//                + beta  * (longest path delay to the QIDG end), higher first.
//   Alap         — as-late-as-possible start times, earlier first (QUALE).
//   AsapDependents — # dependents as initial priority (QPOS).
//   TotalDependentDelay — summed delay of dependents (ref. [5]'s QPOS tweak).
#pragma once

#include <vector>

#include "circuit/dependency_graph.hpp"
#include "common/time.hpp"

namespace qspr {

enum class SchedulePolicy : std::uint8_t {
  QsprPriority,
  Alap,
  AsapDependents,
  TotalDependentDelay,
};

struct ScheduleOptions {
  SchedulePolicy policy = SchedulePolicy::QsprPriority;
  /// Weights of the QSPR linear combination (§III).
  double alpha = 1.0;
  double beta = 1.0;
};

/// Issue rank per instruction: lower rank = higher priority. Deterministic
/// (ties broken by instruction id).
std::vector<int> make_schedule_rank(const DependencyGraph& graph,
                                    const TechnologyParams& params,
                                    const ScheduleOptions& options = {});

/// The total order S induced by a rank vector.
std::vector<InstructionId> schedule_order(const std::vector<int>& rank);

/// Rank realising the reversed total order S* (paper §IV.A), used when
/// executing the UIDG backward.
std::vector<int> reversed_rank(const std::vector<int>& rank);

}  // namespace qspr
