#include "core/result_cache.hpp"

#include <limits>

namespace qspr {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

template <typename T>
void mix_optional(std::uint64_t& hash, const std::optional<T>& value) {
  if (value.has_value()) {
    mix(hash, 1);
    mix(hash, static_cast<std::uint64_t>(*value));
  } else {
    mix(hash, 0);
  }
}

}  // namespace

std::uint64_t program_fingerprint(const Program& program) {
  // Per-qubit dependency-chain hashes, seeded with the qubit index and its
  // declared init value. Instruction hashes chain through these, so the
  // fingerprint captures the interaction *graph*: instructions on disjoint
  // qubits see identical chain states in either textual order, and their
  // wrapping-sum combination commutes exactly as the QIDG does.
  std::vector<std::uint64_t> chain(program.qubit_count());
  for (std::size_t q = 0; q < chain.size(); ++q) {
    std::uint64_t seed = kFnvOffset;
    mix(seed, static_cast<std::uint64_t>(q));
    const std::optional<int>& init = program.qubits()[q].init_value;
    mix(seed, init.has_value() ? static_cast<std::uint64_t>(*init) + 2 : 1);
    chain[q] = seed;
  }
  std::uint64_t sum = 0;
  for (const Instruction& instruction : program.instructions()) {
    std::uint64_t hash = kFnvOffset;
    mix(hash, static_cast<std::uint64_t>(instruction.kind));
    if (instruction.is_two_qubit()) {
      // Control/target order is contractual (source vs destination).
      mix(hash, 2);
      mix(hash, static_cast<std::uint64_t>(instruction.control.value()));
      mix(hash, chain[instruction.control.index()]);
      mix(hash, static_cast<std::uint64_t>(instruction.target.value()));
      mix(hash, chain[instruction.target.index()]);
      chain[instruction.control.index()] = hash * kFnvPrime + 1;
      chain[instruction.target.index()] = hash * kFnvPrime + 2;
    } else {
      mix(hash, 1);
      mix(hash, static_cast<std::uint64_t>(instruction.target.value()));
      mix(hash, chain[instruction.target.index()]);
      chain[instruction.target.index()] = hash * kFnvPrime + 2;
    }
    sum += hash;  // wrapping: commutative across independent instructions
  }
  std::uint64_t fingerprint = kFnvOffset;
  mix(fingerprint, static_cast<std::uint64_t>(program.qubit_count()));
  mix(fingerprint, static_cast<std::uint64_t>(program.instruction_count()));
  mix(fingerprint, sum);
  // Final qubit states pin the *ends* of every dependency chain too, so two
  // programs whose instruction multisets collide but whose chains differ
  // still separate.
  std::uint64_t chain_sum = 0;
  for (const std::uint64_t state : chain) chain_sum += state;
  mix(fingerprint, chain_sum);
  return fingerprint;
}

std::uint64_t mapper_options_fingerprint(const MapperOptions& options) {
  std::uint64_t hash = kFnvOffset;
  mix(hash, static_cast<std::uint64_t>(options.kind));
  mix(hash, static_cast<std::uint64_t>(options.tech.t_move));
  mix(hash, static_cast<std::uint64_t>(options.tech.t_turn));
  mix(hash, static_cast<std::uint64_t>(options.tech.t_gate_1q));
  mix(hash, static_cast<std::uint64_t>(options.tech.t_gate_2q));
  mix(hash, static_cast<std::uint64_t>(options.tech.channel_capacity));
  mix(hash, static_cast<std::uint64_t>(options.tech.junction_capacity));
  mix(hash, static_cast<std::uint64_t>(options.tech.trap_capacity));
  mix(hash, double_bits(options.priority_alpha));
  mix(hash, double_bits(options.priority_beta));
  mix(hash, static_cast<std::uint64_t>(options.placer));
  mix(hash, static_cast<std::uint64_t>(options.mvfb_seeds));
  mix(hash, static_cast<std::uint64_t>(options.monte_carlo_trials));
  mix(hash, options.rng_seed);
  mix(hash, static_cast<std::uint64_t>(options.route_landmarks));
  mix(hash, double_bits(options.route_heuristic_weight));
  mix(hash, options.negotiation_report ? 1 : 0);
  mix_optional(hash, options.turn_aware);
  mix_optional(hash, options.dual_move);
  mix_optional(hash, options.return_home);
  mix_optional(hash, options.channel_capacity);
  mix_optional(hash, options.schedule_policy);
  mix_optional(hash, options.trap_selection);
  return hash;
}

std::size_t CachedMapResult::memory_bytes() const {
  std::size_t bytes = sizeof(CachedMapResult);
  bytes += result.trace.size() * sizeof(MicroOp);
  bytes += result.timings.size() * sizeof(InstructionTiming);
  bytes += nets.size() * sizeof(NetRequest);
  bytes += route_history.size() * sizeof(double);
  for (const RoutedPath& path : paths) {
    bytes += sizeof(RoutedPath) + path.nodes.size() * sizeof(RouteNodeId) +
             path.steps.size() * sizeof(PathStep) +
             path.resource_uses.size() * sizeof(ResourceUse);
  }
  return bytes;
}

std::shared_ptr<const CachedMapResult> ResultCache::find(const Key& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_used = ++tick_;
  return it->second.cached;
}

void ResultCache::insert(const Key& key,
                         std::shared_ptr<const CachedMapResult> entry) {
  if (!entry) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const CachedMapResult* keep = entry.get();
  entries_[key] = Entry{std::move(entry), ++tick_};
  ++stats_.insertions;
  enforce_budget_locked(keep);
}

void ResultCache::set_budget_bytes(std::size_t budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget;
  enforce_budget_locked(nullptr);
}

void ResultCache::enforce_budget_locked(const CachedMapResult* keep) {
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry.cached->memory_bytes();
  }
  while (budget_bytes_ > 0 && total > budget_bytes_) {
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    const Key* victim = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (entry.cached.get() == keep) continue;
      if (entry.last_used < oldest) {
        oldest = entry.last_used;
        victim = &key;
      }
    }
    if (victim == nullptr) break;  // only the protected entry remains
    const auto it = entries_.find(*victim);
    total -= it->second.cached->memory_bytes();
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.bytes = total;
  stats_.entries = entries_.size();
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace qspr
