#include "core/mapper.hpp"

#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/monte_carlo.hpp"
#include "core/mvfb.hpp"
#include "core/placer.hpp"
#include "route/pathfinder.hpp"
#include "route/routing_graph.hpp"

namespace qspr {

namespace {

/// Trap-to-trap relocations of a control trace: per (instruction, operand)
/// the trap it departed and the trap it arrived in. Ops of one operand are
/// chronological within the trace, so first move's `from` / last move's `to`
/// bracket the relocation.
std::vector<NetRequest> relocation_nets(const Trace& trace,
                                        const Fabric& fabric) {
  std::map<std::pair<std::int32_t, std::int32_t>,
           std::pair<Position, Position>>
      spans;
  std::vector<std::pair<std::int32_t, std::int32_t>> order;
  for (const MicroOp& op : trace.ops()) {
    if (op.kind != MicroOpKind::Move) continue;
    const auto key = std::make_pair(op.instruction.value(), op.qubit.value());
    const auto [it, inserted] =
        spans.try_emplace(key, std::make_pair(op.from, op.to));
    if (inserted) {
      order.push_back(key);
    } else {
      it->second.second = op.to;
    }
  }
  std::vector<NetRequest> nets;
  for (const auto& key : order) {
    const auto& [begin, end] = spans.at(key);
    const TrapId from = fabric.trap_at(begin);
    const TrapId to = fabric.trap_at(end);
    if (from.is_valid() && to.is_valid() && from != to) {
      nets.push_back({from, to});
    }
  }
  return nets;
}

NegotiationDiagnostics diagnose_negotiation(const RoutingGraph& routing_graph,
                                            const TechnologyParams& tech,
                                            const Trace& trace) {
  NegotiationDiagnostics diagnostics;
  const std::vector<NetRequest> nets =
      relocation_nets(trace, routing_graph.fabric());
  diagnostics.nets = static_cast<int>(nets.size());
  if (nets.empty()) {
    diagnostics.converged = true;
    return diagnostics;
  }
  const PathFinderResult negotiated =
      route_nets_negotiated(routing_graph, tech, nets);
  diagnostics.iterations_used = negotiated.iterations_used;
  diagnostics.converged = negotiated.converged;
  diagnostics.overused_resources = negotiated.overused_resources;
  diagnostics.max_overuse = negotiated.max_overuse;
  diagnostics.total_excess = negotiated.total_excess;
  diagnostics.min_feasible_excess = negotiated.min_feasible_excess;
  diagnostics.searches_performed = negotiated.searches_performed;
  diagnostics.total_delay = negotiated.total_delay;
  return diagnostics;
}

}  // namespace

std::string to_string(MapperKind kind) {
  switch (kind) {
    case MapperKind::Qspr: return "QSPR";
    case MapperKind::Quale: return "QUALE";
    case MapperKind::Qpos: return "QPOS";
    case MapperKind::IdealBaseline: return "Baseline";
  }
  return "?";
}

ExecutionOptions execution_options_for(const MapperOptions& options) {
  ExecutionOptions exec;
  exec.tech = options.tech;
  switch (options.kind) {
    case MapperKind::Qspr:
    case MapperKind::IdealBaseline:
      exec.router.turn_aware = true;
      exec.dual_move = true;
      break;
    case MapperKind::Quale:
      // Prior art: no turn modelling in path costs, destination fixed, no
      // ion multiplexing in channels (§I), and QUALE's storage discipline
      // (static placement: the visiting ion shuttles home after each gate).
      exec.router.turn_aware = false;
      exec.dual_move = false;
      exec.tech.channel_capacity = 1;
      exec.return_home_after_gate = true;
      break;
    case MapperKind::Qpos:
      // QPOS improves on QUALE: the destination qubit stays where the gate
      // executed ("the destination qubit is fixed in some trap while the
      // source qubit is moved to reach the destination", §I).
      exec.router.turn_aware = false;
      exec.dual_move = false;
      exec.tech.channel_capacity = 1;
      break;
  }
  if (options.turn_aware.has_value()) exec.router.turn_aware = *options.turn_aware;
  if (options.dual_move.has_value()) exec.dual_move = *options.dual_move;
  if (options.return_home.has_value()) {
    exec.return_home_after_gate = *options.return_home;
  }
  if (options.channel_capacity.has_value()) {
    exec.tech.channel_capacity = *options.channel_capacity;
  }
  if (options.trap_selection.has_value()) {
    exec.trap_selection = *options.trap_selection;
  }
  return exec;
}

ScheduleOptions schedule_options_for(const MapperOptions& options) {
  ScheduleOptions sched;
  sched.alpha = options.priority_alpha;
  sched.beta = options.priority_beta;
  switch (options.kind) {
    case MapperKind::Qspr:
    case MapperKind::IdealBaseline:
      sched.policy = SchedulePolicy::QsprPriority;
      break;
    case MapperKind::Quale:
      sched.policy = SchedulePolicy::Alap;
      break;
    case MapperKind::Qpos:
      sched.policy = SchedulePolicy::AsapDependents;
      break;
  }
  if (options.schedule_policy.has_value()) {
    sched.policy = *options.schedule_policy;
  }
  return sched;
}

MapResult map_program(const Program& program, const Fabric& fabric,
                      const MapperOptions& options) {
  const Stopwatch stopwatch;
  require(options.jobs >= 1, "mapper needs at least one worker (jobs >= 1)");
  const DependencyGraph qidg = DependencyGraph::build(program);

  MapResult result;
  result.kind = options.kind;
  result.jobs = options.jobs;
  result.ideal_latency = qidg.critical_path_latency(options.tech);

  if (options.kind == MapperKind::IdealBaseline) {
    result.latency = result.ideal_latency;
    result.placement_runs = 0;
    result.cpu_ms = stopwatch.elapsed_ms();
    return result;
  }

  const RoutingGraph routing_graph(fabric);
  const ExecutionOptions exec = execution_options_for(options);
  const std::vector<int> rank =
      make_schedule_rank(qidg, exec.tech, schedule_options_for(options));

  const auto finish_single = [&](const Placement& initial,
                                 ExecutionResult&& execution) {
    result.latency = execution.latency;
    result.trace = std::move(execution.trace);
    result.initial_placement = initial;
    result.final_placement = std::move(execution.final_placement);
    result.stats = execution.stats;
    result.timings = std::move(execution.timings);
  };

  if (options.kind != MapperKind::Qspr || options.placer == PlacerKind::Center) {
    // Single-placement flows: QUALE / QPOS (center placement, §I) or a QSPR
    // ablation with the center placer.
    const Placement initial = center_placement(fabric, program.qubit_count());
    const ThreadCpuTimer trial_watch;
    ExecutionResult execution = execute_circuit(qidg, fabric, routing_graph,
                                                rank, initial, exec);
    result.trial_cpu_ms = trial_watch.elapsed_ms();
    finish_single(initial, std::move(execution));
    result.placement_runs = 1;
  } else if (options.placer == PlacerKind::MonteCarlo) {
    MonteCarloResult mc = monte_carlo_place_and_execute(
        qidg, fabric, routing_graph, rank, exec, options.monte_carlo_trials,
        options.rng_seed, options.jobs);
    result.trial_cpu_ms = mc.trial_cpu_ms;
    finish_single(mc.best_initial_placement, std::move(mc.best_execution));
    result.placement_runs = mc.trials;
  } else {
    MvfbPlacer placer(qidg, fabric, routing_graph, rank, exec,
                      MvfbOptions{options.mvfb_seeds, 3, 64, options.rng_seed,
                                  options.jobs});
    MvfbResult mvfb = placer.place_and_execute();
    result.trial_cpu_ms = mvfb.trial_cpu_ms;
    result.latency = mvfb.best_latency;
    result.trace = std::move(mvfb.best_trace);
    result.initial_placement = std::move(mvfb.best_initial_placement);
    // For a backward winner the reported (time-reversed) execution ends where
    // the backward run began.
    result.final_placement = mvfb.best_is_backward
                                 ? mvfb.best_execution.initial_placement
                                 : mvfb.best_execution.final_placement;
    result.stats = mvfb.best_execution.stats;
    result.timings = std::move(mvfb.best_execution.timings);
    result.placement_runs = mvfb.total_runs;
  }

  // Stop the clock before the optional diagnostic: cpu_ms reports the
  // mapping itself, and must not depend on whether a report was requested.
  result.cpu_ms = stopwatch.elapsed_ms();
  if (options.negotiation_report && result.trace.size() > 0) {
    result.negotiation =
        diagnose_negotiation(routing_graph, exec.tech, result.trace);
  }
  return result;
}

}  // namespace qspr
