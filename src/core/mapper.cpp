#include "core/mapper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/engine.hpp"

namespace qspr {

std::string to_string(MapperKind kind) {
  switch (kind) {
    case MapperKind::Qspr: return "QSPR";
    case MapperKind::Quale: return "QUALE";
    case MapperKind::Qpos: return "QPOS";
    case MapperKind::IdealBaseline: return "Baseline";
  }
  return "?";
}

std::optional<MapperKind> mapper_kind_from_name(std::string_view name) {
  if (name == "qspr") return MapperKind::Qspr;
  if (name == "quale") return MapperKind::Quale;
  if (name == "qpos") return MapperKind::Qpos;
  if (name == "baseline") return MapperKind::IdealBaseline;
  return std::nullopt;
}

std::optional<PlacerKind> placer_kind_from_name(std::string_view name) {
  if (name == "mvfb") return PlacerKind::Mvfb;
  if (name == "mc") return PlacerKind::MonteCarlo;
  if (name == "center") return PlacerKind::Center;
  return std::nullopt;
}

ExecutionOptions execution_options_for(const MapperOptions& options) {
  ExecutionOptions exec;
  exec.tech = options.tech;
  switch (options.kind) {
    case MapperKind::Qspr:
    case MapperKind::IdealBaseline:
      exec.router.turn_aware = true;
      exec.dual_move = true;
      break;
    case MapperKind::Quale:
      // Prior art: no turn modelling in path costs, destination fixed, no
      // ion multiplexing in channels (§I), and QUALE's storage discipline
      // (static placement: the visiting ion shuttles home after each gate).
      exec.router.turn_aware = false;
      exec.dual_move = false;
      exec.tech.channel_capacity = 1;
      exec.return_home_after_gate = true;
      break;
    case MapperKind::Qpos:
      // QPOS improves on QUALE: the destination qubit stays where the gate
      // executed ("the destination qubit is fixed in some trap while the
      // source qubit is moved to reach the destination", §I).
      exec.router.turn_aware = false;
      exec.dual_move = false;
      exec.tech.channel_capacity = 1;
      break;
  }
  if (options.turn_aware.has_value()) exec.router.turn_aware = *options.turn_aware;
  if (options.dual_move.has_value()) exec.dual_move = *options.dual_move;
  if (options.return_home.has_value()) {
    exec.return_home_after_gate = *options.return_home;
  }
  if (options.channel_capacity.has_value()) {
    exec.tech.channel_capacity = *options.channel_capacity;
  }
  if (options.trap_selection.has_value()) {
    exec.trap_selection = *options.trap_selection;
  }
  return exec;
}

ScheduleOptions schedule_options_for(const MapperOptions& options) {
  ScheduleOptions sched;
  sched.alpha = options.priority_alpha;
  sched.beta = options.priority_beta;
  switch (options.kind) {
    case MapperKind::Qspr:
    case MapperKind::IdealBaseline:
      sched.policy = SchedulePolicy::QsprPriority;
      break;
    case MapperKind::Quale:
      sched.policy = SchedulePolicy::Alap;
      break;
    case MapperKind::Qpos:
      sched.policy = SchedulePolicy::AsapDependents;
      break;
  }
  if (options.schedule_policy.has_value()) {
    sched.policy = *options.schedule_policy;
  }
  return sched;
}

MapResult map_program(const Program& program, const Fabric& fabric,
                      const MapperOptions& options) {
  require(options.jobs >= 1, "mapper needs at least one worker (jobs >= 1)");
  require(options.route_jobs >= 1,
          "mapper needs at least one route worker (route_jobs >= 1)");
  // One-shot engine sized to what this job can actually use: trial-parallel
  // flows get min(jobs, trials) workers, single-placement flows stay on the
  // calling thread. Callers mapping many programs should hold a
  // MappingEngine instead and let jobs share its executor and fabric
  // artifact cache.
  int workers = 1;
  if (options.kind == MapperKind::Qspr) {
    if (options.placer == PlacerKind::MonteCarlo) {
      workers = std::min(options.jobs,
                         std::max(1, options.monte_carlo_trials));
    } else if (options.placer == PlacerKind::Mvfb) {
      workers = std::min(options.jobs, std::max(1, options.mvfb_seeds));
    }
  }
  if (options.negotiation_report) {
    // The negotiation diagnostic batch-routes on the same executor; give
    // its speculative waves the workers they were asked for.
    workers = std::max(workers, options.route_jobs);
  }
  MappingEngine engine(workers);
  MapResult result = engine.map(program, fabric, options);
  // Report the worker budget the caller asked for, as before, not the
  // clamped engine size.
  result.jobs = options.jobs;
  return result;
}

}  // namespace qspr
