// Initial placements (paper §I, §IV.A, §V.A).
//
// Center placement parks the qubits in the free traps nearest the fabric
// center (QUALE's placer). Its randomised variant — a random permutation of
// the qubits over those same nearest-center traps — seeds both the Monte
// Carlo placer and each MVFB multi-start.
//
// The `_from` overloads draw from a precomputed traps-by-distance table
// (FabricArtifacts::traps_near_center, or any fabric.traps_by_distance
// result) so trial loops stop re-sorting the trap list on every placement;
// results are bit-identical to the table-free versions.
#pragma once

#include "common/rng.hpp"
#include "fabric/fabric.hpp"
#include "sim/placement.hpp"

namespace qspr {

/// Deterministic center placement: qubit k sits in the k-th nearest trap to
/// the fabric center. Throws ValidationError when the fabric has fewer traps
/// than qubits.
Placement center_placement(const Fabric& fabric, std::size_t qubit_count);

/// Random center placement: a uniformly random assignment of the qubits onto
/// the `qubit_count` nearest-center traps.
Placement random_center_placement(const Fabric& fabric,
                                  std::size_t qubit_count, Rng& rng);

/// As center_placement, over a precomputed traps-by-center-distance table.
/// Throws ValidationError when the table has fewer traps than qubits.
Placement center_placement_from(const std::vector<TrapId>& traps_near_center,
                                std::size_t qubit_count);

/// As random_center_placement, over a precomputed table. Bit-identical to
/// the table-free version for the same Rng state.
Placement random_center_placement_from(
    const std::vector<TrapId>& traps_near_center, std::size_t qubit_count,
    Rng& rng);

}  // namespace qspr
