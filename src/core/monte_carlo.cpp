#include "core/monte_carlo.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/placer.hpp"
#include "core/trial_context.hpp"

namespace qspr {

MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    int jobs) {
  require(trials >= 1, "Monte Carlo placer needs at least one trial");
  require(jobs >= 1, "Monte Carlo placer needs at least one worker");
  // One simulator, shared read-only by all workers; each run threads the
  // worker's own arena through.
  const EventSimulator simulator(qidg, fabric, routing_graph, rank,
                                 exec_options);

  // Fork one RNG per trial up front, in trial order: trial t's stream is a
  // pure function of (rng_seed, t), independent of the worker count.
  Rng root(rng_seed);
  std::vector<Rng> trial_rngs;
  trial_rngs.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    trial_rngs.push_back(root.fork());
  }

  const int workers = std::min(jobs, trials);
  std::vector<TrialContext> contexts(static_cast<std::size_t>(workers));
  struct WorkerBest {
    TrialContext::Incumbent incumbent;
    Placement placement;
    ExecutionResult execution;
  };
  std::vector<WorkerBest> best(static_cast<std::size_t>(workers));

  ThreadPool pool(workers);
  pool.parallel_for_each(
      static_cast<std::size_t>(trials), [&](std::size_t trial, int worker) {
        TrialContext& ctx = contexts[static_cast<std::size_t>(worker)];
        const ThreadCpuTimer watch;
        ctx.rng = trial_rngs[trial];
        const Placement placement =
            random_center_placement(fabric, qidg.qubit_count(), ctx.rng);
        ExecutionResult execution = simulator.run(placement, ctx.arena);
        WorkerBest& local = best[static_cast<std::size_t>(worker)];
        if (local.incumbent.improved_by(execution.latency, trial)) {
          local.incumbent = {execution.latency, trial};
          local.placement = placement;
          local.execution = std::move(execution);
        }
        ctx.cpu_ms += watch.elapsed_ms();
      });

  // Deterministic cross-worker merge by (latency, trial index).
  MonteCarloResult result;
  result.trials = trials;
  WorkerBest* winner = nullptr;
  for (WorkerBest& candidate : best) {
    if (winner == nullptr ||
        winner->incumbent.improved_by(candidate.incumbent.latency,
                                      candidate.incumbent.trial_index)) {
      winner = &candidate;
    }
  }
  for (const TrialContext& ctx : contexts) result.trial_cpu_ms += ctx.cpu_ms;

  require(winner != nullptr && winner->incumbent.latency < kInfiniteDuration,
          "Monte Carlo produced no execution");
  result.best_latency = winner->incumbent.latency;
  result.best_initial_placement = std::move(winner->placement);
  result.best_execution = std::move(winner->execution);
  return result;
}

}  // namespace qspr
