#include "core/monte_carlo.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/placer.hpp"
#include "core/trial_context.hpp"

namespace qspr {

/// Everything one in-flight trial loop owns. The simulator is shared
/// read-only by all workers; each run threads the worker's own arena
/// through.
struct MonteCarloState {
  MonteCarloState(const DependencyGraph& qidg, const Fabric& fabric,
                  const RoutingGraph& routing_graph,
                  const std::vector<int>& rank,
                  const ExecutionOptions& exec_options)
      : simulator(qidg, fabric, routing_graph, rank, exec_options) {}

  EventSimulator simulator;
  std::vector<Rng> trial_rngs;
  std::vector<TrialContext> contexts;
  /// Borrowed placement table, or &owned_traps_near_center.
  const std::vector<TrapId>* traps_near_center = nullptr;
  std::vector<TrapId> owned_traps_near_center;
  std::size_t qubit_count = 0;
  int trials = 0;

  struct WorkerBest {
    TrialContext::Incumbent incumbent;
    Placement placement;
    ExecutionResult execution;
  };
  std::vector<WorkerBest> best;
};

MonteCarloRun::MonteCarloRun() = default;
MonteCarloRun::MonteCarloRun(MonteCarloRun&&) noexcept = default;
MonteCarloRun& MonteCarloRun::operator=(MonteCarloRun&&) noexcept = default;
MonteCarloRun::~MonteCarloRun() = default;

MonteCarloRun monte_carlo_submit(const DependencyGraph& qidg,
                                 const Fabric& fabric,
                                 const RoutingGraph& routing_graph,
                                 const std::vector<int>& rank,
                                 const ExecutionOptions& exec_options,
                                 int trials, std::uint64_t rng_seed,
                                 Executor& executor,
                                 const std::vector<TrapId>* traps_near_center,
                                 CancelToken cancel) {
  require(trials >= 1, "Monte Carlo placer needs at least one trial");
  auto state = std::make_shared<MonteCarloState>(qidg, fabric, routing_graph,
                                                 rank, exec_options);
  state->qubit_count = qidg.qubit_count();
  state->trials = trials;
  state->traps_near_center = traps_near_center;
  if (state->traps_near_center == nullptr) {
    state->owned_traps_near_center =
        fabric.traps_by_distance(fabric.center());
    state->traps_near_center = &state->owned_traps_near_center;
  }

  // Fork one RNG per trial up front, in trial order: trial t's stream is a
  // pure function of (rng_seed, t), independent of the worker count and of
  // other jobs sharing the executor.
  Rng root(rng_seed);
  state->trial_rngs.reserve(static_cast<std::size_t>(trials));
  for (int trial = 0; trial < trials; ++trial) {
    state->trial_rngs.push_back(root.fork());
  }
  const auto slots = static_cast<std::size_t>(executor.worker_count());
  state->contexts.resize(slots);
  state->best.resize(slots);

  MonteCarloRun run;
  run.state_ = state;
  run.job_ = executor.submit(
      static_cast<std::size_t>(trials),
      [state, cancel](std::size_t trial, int worker) {
        // Cooperative cancellation boundary: a fired token abandons this
        // job's remaining trials (per-job error capture), never mid-trial.
        cancel.check();
        TrialContext& ctx = state->contexts[static_cast<std::size_t>(worker)];
        const ThreadCpuTimer watch;
        ctx.rng = state->trial_rngs[trial];
        const Placement placement = random_center_placement_from(
            *state->traps_near_center, state->qubit_count, ctx.rng);
        ExecutionResult execution =
            state->simulator.run(placement, ctx.arena);
        MonteCarloState::WorkerBest& local =
            state->best[static_cast<std::size_t>(worker)];
        if (local.incumbent.improved_by(execution.latency, trial)) {
          local.incumbent = {execution.latency, trial};
          local.placement = placement;
          local.execution = std::move(execution);
        }
        ctx.cpu_ms += watch.elapsed_ms();
      });
  return run;
}

MonteCarloResult monte_carlo_collect(Executor& executor, MonteCarloRun& run) {
  require(run.valid(), "collect() needs a submitted Monte Carlo run");
  executor.wait(run.job_);
  MonteCarloState& state = *run.state_;

  // Deterministic cross-worker merge by (latency, trial index).
  MonteCarloResult result;
  result.trials = state.trials;
  MonteCarloState::WorkerBest* winner = nullptr;
  for (MonteCarloState::WorkerBest& candidate : state.best) {
    if (winner == nullptr ||
        winner->incumbent.improved_by(candidate.incumbent.latency,
                                      candidate.incumbent.trial_index)) {
      winner = &candidate;
    }
  }
  for (const TrialContext& ctx : state.contexts) {
    result.trial_cpu_ms += ctx.cpu_ms;
  }

  require(winner != nullptr && winner->incumbent.latency < kInfiniteDuration,
          "Monte Carlo produced no execution");
  result.best_latency = winner->incumbent.latency;
  result.best_initial_placement = std::move(winner->placement);
  result.best_execution = std::move(winner->execution);
  return result;
}

MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    Executor& executor, const std::vector<TrapId>* traps_near_center) {
  MonteCarloRun run =
      monte_carlo_submit(qidg, fabric, routing_graph, rank, exec_options,
                         trials, rng_seed, executor, traps_near_center);
  return monte_carlo_collect(executor, run);
}

MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    int jobs) {
  require(trials >= 1, "Monte Carlo placer needs at least one trial");
  require(jobs >= 1, "Monte Carlo placer needs at least one worker");
  Executor executor(std::min(jobs, trials));
  return monte_carlo_place_and_execute(qidg, fabric, routing_graph, rank,
                                       exec_options, trials, rng_seed,
                                       executor);
}

}  // namespace qspr
