#include "core/monte_carlo.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/placer.hpp"

namespace qspr {

MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials,
    std::uint64_t rng_seed) {
  require(trials >= 1, "Monte Carlo placer needs at least one trial");
  EventSimulator simulator(qidg, fabric, routing_graph, rank, exec_options);
  Rng rng(rng_seed);

  MonteCarloResult result;
  for (int trial = 0; trial < trials; ++trial) {
    Rng trial_rng = rng.fork();
    const Placement placement =
        random_center_placement(fabric, qidg.qubit_count(), trial_rng);
    const ExecutionResult execution = simulator.run(placement);
    ++result.trials;
    if (execution.latency < result.best_latency) {
      result.best_latency = execution.latency;
      result.best_initial_placement = placement;
      result.best_execution = execution;
    }
  }
  return result;
}

}  // namespace qspr
