#include "core/report.hpp"

#include <sstream>

#include "circuit/dependency_graph.hpp"
#include "common/table.hpp"
#include "sim/utilization.hpp"

namespace qspr {

std::string make_report(const MapResult& result, const Program& program,
                        const Fabric& fabric, const ReportOptions& options) {
  std::ostringstream os;
  os << "=== mapping report: "
     << (program.name().empty() ? "<unnamed>" : program.name()) << " ===\n"
     << "mapper " << to_string(result.kind) << " on "
     << (fabric.name().empty() ? "fabric" : fabric.name()) << " ("
     << fabric.rows() << "x" << fabric.cols() << ")\n"
     << "latency " << result.latency << " us, ideal lower bound "
     << result.ideal_latency << " us (overhead "
     << format_percent(
            static_cast<double>(result.latency - result.ideal_latency),
            static_cast<double>(result.ideal_latency))
     << ")\n"
     << "transport: " << result.stats.moves << " moves, "
     << result.stats.turns << " turns; Eq.1 sums: T_routing "
     << result.stats.total_routing << " us, T_congestion "
     << result.stats.total_congestion << " us\n"
     << "mapping cpu: " << format_fixed(result.cpu_ms, 1) << " ms wall, "
     << format_fixed(result.trial_cpu_ms, 1) << " ms aggregate trial cpu ("
     << result.placement_runs << " placement runs on " << result.jobs
     << " worker" << (result.jobs == 1 ? "" : "s") << ")\n";

  if (result.negotiation.has_value()) {
    const NegotiationDiagnostics& n = *result.negotiation;
    os << "negotiated routing: " << n.nets
       << " relocations batch-routed (PathFinder), ";
    if (n.converged) {
      os << "converged in " << n.iterations_used << " iteration"
         << (n.iterations_used == 1 ? "" : "s");
    } else {
      os << "NOT converged after " << n.iterations_used << " iterations ("
         << n.overused_resources << " resources over capacity, worst +"
         << n.max_overuse << ", excess " << n.total_excess
         << ", structural floor " << n.min_feasible_excess << ")";
    }
    os << "; " << n.searches_performed << " searches, batch delay "
       << n.total_delay << " us";
    // Search-quality knobs: ALT landmark count (0 = grid bound only), the
    // bounded-suboptimality weight, the nodes the searches settled, and any
    // mid-negotiation potential-table refreshes.
    os << "\n  search: " << n.landmarks_used << " landmark"
       << (n.landmarks_used == 1 ? "" : "s") << ", heuristic weight "
       << format_fixed(n.heuristic_weight, 2) << ", " << n.nodes_settled
       << " nodes settled";
    if (n.alt_refreshes > 0) {
      os << ", " << n.alt_refreshes << " potential refresh"
         << (n.alt_refreshes == 1 ? "" : "es");
    }
    if (n.route_jobs >= 2) {
      // How the identical result was computed: committed speculations vs
      // commit-time re-routes of the wave protocol.
      os << " (" << n.route_jobs << " route workers: "
         << n.speculative_commits << " speculative commits, "
         << n.speculative_reroutes << " re-routes)";
    }
    os << "\n";
  }

  const DependencyGraph graph = DependencyGraph::build(program);

  if (options.include_timing_table && !result.timings.empty()) {
    TextTable table({"#", "Gate", "Ready", "Issue", "Gate start", "Gate end",
                     "T_cong", "T_rout"});
    for (std::size_t i = 0; i < result.timings.size(); ++i) {
      const InstructionTiming& t = result.timings[i];
      const Instruction& instr =
          graph.instruction(InstructionId::from_index(i));
      std::string gate{mnemonic(instr.kind)};
      if (instr.is_two_qubit()) {
        gate += " " + program.qubit(instr.control).name + "," +
                program.qubit(instr.target).name;
      } else {
        gate += " " + program.qubit(instr.target).name;
      }
      table.add_row({std::to_string(i), gate, std::to_string(t.ready),
                     std::to_string(t.issue), std::to_string(t.gate_start),
                     std::to_string(t.gate_end),
                     std::to_string(t.t_congestion()),
                     std::to_string(t.t_routing())});
    }
    os << "\ninstruction timing (us):\n" << table.to_string();
  }

  if (options.include_utilization && result.trace.size() > 0) {
    const ResourceUtilization utilization =
        analyze_utilization(result.trace, fabric);
    os << "\n" << utilization_summary(utilization, fabric);
  }

  if (options.include_gantt && !result.timings.empty()) {
    os << "\nexecution timeline:\n" << render_gantt(result.timings, graph);
  }

  if (options.include_fidelity && result.trace.size() > 0) {
    const FidelityEstimate estimate = estimate_fidelity(
        result.trace, program.qubit_count(), program.two_qubit_gate_count(),
        options.error_model);
    os << "\nfidelity estimate (T2 = "
       << format_fixed(options.error_model.t2_us / 1000.0, 0)
       << " ms): " << format_fixed(estimate.circuit_fidelity, 4)
       << " (operations " << format_fixed(estimate.operation_fidelity, 4)
       << ", decoherence " << format_fixed(estimate.decoherence_fidelity, 4)
       << ", " << format_fixed(reliability_nines(estimate), 2)
       << " nines)\n";
  }
  return os.str();
}

}  // namespace qspr
