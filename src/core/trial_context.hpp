// Thread-confined scratch of one mapping-trial worker.
//
// The trial-parallel flows (MVFB seed loop, Monte-Carlo trial loop) share a
// single immutable view — DependencyGraph, Fabric, RoutingGraph, schedule
// rank, ExecutionOptions, and the EventSimulator built over them — across
// all workers. Everything mutable lives here, one instance per worker:
//
//   * arena       — the router's SearchArena, threaded through every
//                   EventSimulator::run on this worker;
//   * rng         — the current trial's RNG, *assigned* per trial from a
//                   stream forked up front by trial index, so results never
//                   depend on which worker ran which trial;
//   * incumbent   — the worker-local best trial, merged across workers by
//                   (latency, trial index) after the loop. Keeping one
//                   ExecutionResult per worker (instead of one per trial)
//                   bounds memory while preserving the deterministic
//                   argmin: a later index never displaces an equal-latency
//                   earlier one.
//
// Workers that batch-route whole layers with the PathFinder own a
// PathFinderScratch the same way, via the scratch-taking overload of
// route_nets_negotiated (route/pathfinder.hpp).
#pragma once

#include <cstddef>
#include <limits>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "route/search_arena.hpp"

namespace qspr {

struct TrialContext {
  SearchArena<Duration> arena;
  Rng rng{0};

  /// Worker-local incumbent over the trials this worker happened to run.
  struct Incumbent {
    Duration latency = kInfiniteDuration;
    std::size_t trial_index = std::numeric_limits<std::size_t>::max();

    /// True when (latency, index) beats the stored incumbent — the total
    /// order that makes the cross-worker merge independent of scheduling.
    [[nodiscard]] bool improved_by(Duration candidate_latency,
                                   std::size_t candidate_index) const {
      if (candidate_latency != latency) return candidate_latency < latency;
      return candidate_index < trial_index;
    }
  };

  /// Aggregate thread-CPU milliseconds this worker spent inside trials.
  double cpu_ms = 0.0;
};

}  // namespace qspr
