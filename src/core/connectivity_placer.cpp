#include "core/connectivity_placer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qspr {

std::vector<std::vector<int>> interaction_weights(const Program& program) {
  const std::size_t n = program.qubit_count();
  std::vector<std::vector<int>> weights(n, std::vector<int>(n, 0));
  for (const Instruction& instr : program.instructions()) {
    if (!instr.is_two_qubit()) continue;
    ++weights[instr.control.index()][instr.target.index()];
    ++weights[instr.target.index()][instr.control.index()];
  }
  return weights;
}

Placement connectivity_placement(const Fabric& fabric,
                                 const Program& program) {
  const std::size_t n = program.qubit_count();
  if (fabric.trap_count() < n) {
    throw ValidationError("fabric has fewer traps than circuit qubits");
  }
  const auto weights = interaction_weights(program);

  // Candidate traps: the n nearest-center sites (same pool as the center
  // placer, so differences come from the assignment, not the region).
  std::vector<TrapId> pool = fabric.traps_by_distance(fabric.center());
  pool.resize(n);
  std::vector<bool> taken(n, false);

  // Qubit order: decreasing total interaction weight, ties by index.
  std::vector<std::size_t> qubit_order(n);
  std::iota(qubit_order.begin(), qubit_order.end(), 0);
  std::vector<long long> degree(n, 0);
  for (std::size_t q = 0; q < n; ++q) {
    degree[q] = std::accumulate(weights[q].begin(), weights[q].end(), 0LL);
  }
  std::sort(qubit_order.begin(), qubit_order.end(),
            [&degree](std::size_t a, std::size_t b) {
              if (degree[a] != degree[b]) return degree[a] > degree[b];
              return a < b;
            });

  Placement placement(n);
  for (const std::size_t q : qubit_order) {
    long long best_cost = -1;
    std::size_t best_slot = 0;
    for (std::size_t slot = 0; slot < pool.size(); ++slot) {
      if (taken[slot]) continue;
      const Position candidate = fabric.trap(pool[slot]).position;
      // Weighted distance to already-placed partners; the slot index breaks
      // ties toward the fabric center.
      long long cost = 0;
      for (std::size_t other = 0; other < n; ++other) {
        if (weights[q][other] == 0) continue;
        const TrapId other_trap =
            placement.trap_of(QubitId::from_index(other));
        if (!other_trap.is_valid()) continue;
        cost += static_cast<long long>(weights[q][other]) *
                manhattan_distance(candidate,
                                   fabric.trap(other_trap).position);
      }
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_slot = slot;
      }
    }
    taken[best_slot] = true;
    placement.set(QubitId::from_index(q), pool[best_slot]);
  }
  return placement;
}

}  // namespace qspr
