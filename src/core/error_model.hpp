// Noise / fidelity estimation — the paper's motivation made quantitative.
//
// §I: "A key challenge ... is the environmental noise ... In this work we
// focus on minimizing the total latency of the circuit to minimize the error
// in the circuit." This module turns a mapped control trace into an error
// estimate so the latency reductions of Tables 1-2 can be read as fidelity
// gains:
//
//   * every operation (gate, move, turn) contributes a failure probability;
//   * every qubit decoheres while it exists: exp(-T_total / T2) per qubit,
//     the memory-error model standard for trapped ions.
//
// The estimate is a product of survival probabilities (independent-error
// approximation), reported in log space to stay stable for large circuits.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "sim/trace.hpp"

namespace qspr {

struct ErrorModelParams {
  /// Depolarising probabilities per operation.
  double error_1q_gate = 1e-4;
  double error_2q_gate = 1e-3;
  double error_move = 1e-6;
  double error_turn = 5e-6;
  /// Coherence time (us). Ion-trap memory coherence is long; 1e5 us = 100 ms.
  double t2_us = 1e5;

  void validate() const;
};

struct FidelityEstimate {
  /// Probability that the whole circuit ran without any error.
  double circuit_fidelity = 1.0;
  /// Survival probability of the operations alone (gates + transport).
  double operation_fidelity = 1.0;
  /// Survival probability of idle decoherence alone.
  double decoherence_fidelity = 1.0;
  /// Aggregates feeding the estimate.
  std::size_t gates_1q = 0;
  std::size_t gates_2q = 0;
  std::size_t moves = 0;
  std::size_t turns = 0;
  Duration makespan = 0;
};

/// Estimates the end-to-end fidelity of executing `trace` on `qubit_count`
/// qubits. The trace must carry one Gate op per instruction (as produced by
/// the simulator); gate arity is inferred from the instruction's operands
/// being co-located — callers should pass the per-kind counts via the trace's
/// instruction ops. Throws ValidationError on non-physical parameters.
FidelityEstimate estimate_fidelity(const Trace& trace,
                                   std::size_t qubit_count,
                                   std::size_t two_qubit_gate_count,
                                   const ErrorModelParams& params = {});

/// Equivalent error threshold view (§I): the decoding failure exponent
/// -log10(1 - fidelity), higher is better; "n nines" of reliability.
double reliability_nines(const FidelityEstimate& estimate);

}  // namespace qspr
