// Program-level mapping result cache: the second half of the warm-start
// story (beside FabricArtifactCache, which shares per-fabric structures).
//
// A service absorbing interactive traffic sees near-duplicate circuits —
// resubmissions, and incremental edits against an open session. The cache
// keys on a canonical QIDG fingerprint of the program (order-independent
// where the program is: two textual orderings of the same interaction
// structure hash identically), the fabric-layout fingerprint, and a
// fingerprint of the *contractual* mapper options — the knobs that change
// the mapped result, deliberately excluding jobs/route_jobs, which are
// bit-identity-neutral by the PR-2 determinism contract.
//
// Each entry carries the MapResult plus the negotiated net list and routed
// paths of its diagnostic batch, so an edited successor circuit can seed
// route_nets_negotiated (WarmStartSeed) from the prior instead of routing
// cold. Exact resubmission is a pure hit: no placement, no routing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "circuit/program.hpp"
#include "core/mapper.hpp"
#include "route/pathfinder.hpp"

namespace qspr {

/// Canonical QIDG fingerprint: FNV-1a over the program's interaction
/// structure. Each instruction hashes (gate kind, operand qubits, and the
/// running hash of each operand's dependency chain); per-instruction hashes
/// combine by wrapping sum, so instructions on disjoint qubits commute in
/// the fingerprint exactly as they commute in the QIDG, while dependent
/// instructions chain through their shared qubits and stay order-sensitive.
/// Qubit names are ignored (placement is index-based); init values are not.
[[nodiscard]] std::uint64_t program_fingerprint(const Program& program);

/// Fingerprint of the MapperOptions fields that are contractual for the
/// mapped result: kind, technology parameters, priorities, placer and trial
/// budgets, rng_seed, route_landmarks, route_heuristic_weight,
/// negotiation_report, and the ablation overrides. jobs/route_jobs are
/// excluded — results are bit-identical at any value.
[[nodiscard]] std::uint64_t mapper_options_fingerprint(
    const MapperOptions& options);

/// A finished mapping plus the negotiated routing state a successor can warm
/// from. `nets`/`paths` are the parallel vectors of the negotiation
/// diagnostic batch (empty when the job ran without negotiation_report);
/// `converged` gates seeding — only a converged prior leaves clean
/// occupancy worth keeping.
struct CachedMapResult {
  MapResult result;
  std::vector<NetRequest> nets;
  std::vector<RoutedPath> paths;
  /// Prior negotiation state (ledger history table and final present
  /// factor) carried into the successor's WarmStartSeed — paths alone are
  /// unstable under edits (see WarmStartSeed).
  std::vector<double> route_history;
  double route_present_factor = 0.0;
  bool converged = false;

  /// Estimated resident bytes (trace, timings, nets, paths).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Thread-safe LRU result cache keyed on (program, fabric, options)
/// fingerprints, with the same memory-budget semantics as
/// FabricArtifactCache: set_budget_bytes(0) = unlimited; eviction never
/// drops the entry the current operation returns/inserts, so a budget
/// smaller than one entry degrades to a cache of one.
class ResultCache {
 public:
  struct Key {
    std::uint64_t program_fp = 0;
    std::uint64_t fabric_fp = 0;
    std::uint64_t options_fp = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    long long evictions = 0;
    /// Estimated resident bytes at the last find/insert.
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  /// nullptr on miss (counted).
  [[nodiscard]] std::shared_ptr<const CachedMapResult> find(const Key& key);

  /// Inserts (or replaces) the entry for `key` and enforces the budget,
  /// never evicting the entry just inserted.
  void insert(const Key& key,
              std::shared_ptr<const CachedMapResult> entry);

  /// LRU memory budget in bytes (0 = unlimited, the default).
  void set_budget_bytes(std::size_t budget);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      std::uint64_t hash = key.program_fp;
      hash ^= key.fabric_fp + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
      hash ^= key.options_fp + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
      return static_cast<std::size_t>(hash);
    }
  };

  struct Entry {
    std::shared_ptr<const CachedMapResult> cached;
    std::uint64_t last_used = 0;
  };

  /// Caller holds mutex_. Evicts LRU entries (never `keep`) until the
  /// estimated total fits the budget.
  void enforce_budget_locked(const CachedMapResult* keep);

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  Stats stats_;
  std::size_t budget_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace qspr
