// Umbrella header: the full public API of the QSPR library.
//
//   #include "core/qspr.hpp"
//
//   using namespace qspr;
//   Program program = parse_qasm_file("encoder.qasm");
//   Fabric fabric = make_paper_fabric();           // the 45x85 Fig. 4 fabric
//   MapResult result = map_program(program, fabric);
//   std::cout << result.latency << " us\n";
#pragma once

#include "circuit/dependency_graph.hpp"  // IWYU pragma: export
#include "circuit/dot.hpp"               // IWYU pragma: export
#include "circuit/gate.hpp"              // IWYU pragma: export
#include "circuit/program.hpp"           // IWYU pragma: export
#include "circuit/transform.hpp"         // IWYU pragma: export
#include "common/error.hpp"              // IWYU pragma: export
#include "common/executor.hpp"           // IWYU pragma: export
#include "common/geometry.hpp"           // IWYU pragma: export
#include "common/ids.hpp"                // IWYU pragma: export
#include "common/json.hpp"               // IWYU pragma: export
#include "common/rng.hpp"                // IWYU pragma: export
#include "common/stats.hpp"              // IWYU pragma: export
#include "common/stopwatch.hpp"          // IWYU pragma: export
#include "common/table.hpp"              // IWYU pragma: export
#include "common/time.hpp"               // IWYU pragma: export
#include "core/artifact_cache.hpp"       // IWYU pragma: export
#include "core/connectivity_placer.hpp"  // IWYU pragma: export
#include "core/engine.hpp"               // IWYU pragma: export
#include "core/error_model.hpp"          // IWYU pragma: export
#include "core/mapper.hpp"               // IWYU pragma: export
#include "core/monte_carlo.hpp"          // IWYU pragma: export
#include "core/mvfb.hpp"                 // IWYU pragma: export
#include "core/placer.hpp"               // IWYU pragma: export
#include "core/report.hpp"               // IWYU pragma: export
#include "core/scheduler.hpp"            // IWYU pragma: export
#include "fabric/fabric.hpp"             // IWYU pragma: export
#include "fabric/linear_fabric.hpp"      // IWYU pragma: export
#include "fabric/quale_fabric.hpp"       // IWYU pragma: export
#include "fabric/text_io.hpp"            // IWYU pragma: export
#include "qasm/parser.hpp"               // IWYU pragma: export
#include "qasm/writer.hpp"               // IWYU pragma: export
#include "qecc/codes.hpp"                // IWYU pragma: export
#include "qecc/cyclic_builder.hpp"       // IWYU pragma: export
#include "qecc/random_circuit.hpp"       // IWYU pragma: export
#include "route/heuristic.hpp"           // IWYU pragma: export
#include "route/pathfinder.hpp"          // IWYU pragma: export
#include "route/router.hpp"              // IWYU pragma: export
#include "route/routing_graph.hpp"       // IWYU pragma: export
#include "route/search_arena.hpp"        // IWYU pragma: export
#include "sim/event_sim.hpp"             // IWYU pragma: export
#include "sim/placement.hpp"             // IWYU pragma: export
#include "sim/trace.hpp"                 // IWYU pragma: export
#include "sim/trace_io.hpp"              // IWYU pragma: export
#include "sim/trace_validator.hpp"       // IWYU pragma: export
#include "sim/trajectory.hpp"            // IWYU pragma: export
#include "sim/utilization.hpp"           // IWYU pragma: export
