#include "core/artifact_cache.hpp"

namespace qspr {

FabricArtifacts::FabricArtifacts(const Fabric& source)
    : fabric(source),
      graph(fabric),
      traps_near_center(fabric.traps_by_distance(fabric.center())) {
  trap_port_count.reserve(fabric.trap_count());
  for (const Trap& trap : fabric.traps()) {
    trap_port_count.push_back(static_cast<int>(trap.ports.size()));
  }
}

std::shared_ptr<const LandmarkTables> FabricArtifacts::landmark_tables(
    double t_move, double turn_cost, int k) const {
  if (k <= 0) return nullptr;
  const std::lock_guard<std::mutex> lock(landmark_mutex_);
  auto& entry = landmark_tables_[{t_move, turn_cost, k}];
  if (entry) {
    ++landmark_stats_.hits;
    return entry;
  }
  ++landmark_stats_.builds;
  entry = std::make_shared<const LandmarkTables>(
      build_landmark_tables(graph, t_move, turn_cost, k));
  return entry;
}

LandmarkCacheStats FabricArtifacts::landmark_stats() const {
  const std::lock_guard<std::mutex> lock(landmark_mutex_);
  return landmark_stats_;
}

std::uint64_t fabric_fingerprint(const Fabric& fabric) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(static_cast<std::uint64_t>(fabric.rows()));
  mix(static_cast<std::uint64_t>(fabric.cols()));
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      hash ^= static_cast<std::uint64_t>(fabric.cell({row, col}));
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

bool same_fabric_layout(const Fabric& a, const Fabric& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int row = 0; row < a.rows(); ++row) {
    for (int col = 0; col < a.cols(); ++col) {
      if (a.cell({row, col}) != b.cell({row, col})) return false;
    }
  }
  return true;
}

std::shared_ptr<const FabricArtifacts> FabricArtifactCache::get(
    const Fabric& fabric) {
  const std::uint64_t key = fabric_fingerprint(fabric);
  const auto find_in_bucket =
      [&fabric](const std::vector<std::shared_ptr<const FabricArtifacts>>&
                    bucket) -> std::shared_ptr<const FabricArtifacts> {
    for (const auto& entry : bucket) {
      if (same_fabric_layout(entry->fabric, fabric)) return entry;
    }
    return nullptr;
  };
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (auto entry = find_in_bucket(it->second)) {
        ++stats_.hits;
        return entry;
      }
    }
  }
  // Build outside the lock: artifact construction (CSR packing) is the
  // expensive part and must not serialize unrelated lookups. A concurrent
  // first-sight of the same layout may build twice; the first insert wins.
  auto built = std::make_shared<const FabricArtifacts>(fabric);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = entries_[key];
  if (auto entry = find_in_bucket(bucket)) {
    ++stats_.hits;
    return entry;
  }
  ++stats_.builds;
  bucket.push_back(std::move(built));
  return bucket.back();
}

FabricArtifactCache::Stats FabricArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

LandmarkCacheStats FabricArtifactCache::landmark_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  LandmarkCacheStats total;
  for (const auto& [key, bucket] : entries_) {
    for (const auto& entry : bucket) {
      const LandmarkCacheStats stats = entry->landmark_stats();
      total.builds += stats.builds;
      total.hits += stats.hits;
    }
  }
  return total;
}

std::size_t FabricArtifactCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, bucket] : entries_) total += bucket.size();
  return total;
}

void FabricArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace qspr
