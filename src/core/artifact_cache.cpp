#include "core/artifact_cache.hpp"

#include <limits>

namespace qspr {

FabricArtifacts::FabricArtifacts(const Fabric& source)
    : fabric(source),
      graph(fabric),
      traps_near_center(fabric.traps_by_distance(fabric.center())) {
  trap_port_count.reserve(fabric.trap_count());
  for (const Trap& trap : fabric.traps()) {
    trap_port_count.push_back(static_cast<int>(trap.ports.size()));
  }
}

std::shared_ptr<const LandmarkTables> FabricArtifacts::landmark_tables(
    double t_move, double turn_cost, int k) const {
  if (k <= 0) return nullptr;
  const std::lock_guard<std::mutex> lock(landmark_mutex_);
  auto& entry = landmark_tables_[{t_move, turn_cost, k}];
  if (entry) {
    ++landmark_stats_.hits;
    return entry;
  }
  ++landmark_stats_.builds;
  entry = std::make_shared<const LandmarkTables>(
      build_landmark_tables(graph, t_move, turn_cost, k));
  return entry;
}

LandmarkCacheStats FabricArtifacts::landmark_stats() const {
  const std::lock_guard<std::mutex> lock(landmark_mutex_);
  return landmark_stats_;
}

std::size_t FabricArtifacts::memory_bytes() const {
  // Estimate, not an exact accounting: the dominant terms are the CSR
  // routing graph (node records + edge storage) and the landmark tables
  // (2 * K doubles per node per table set); container overheads are folded
  // into per-element constants.
  std::size_t bytes = sizeof(FabricArtifacts);
  bytes += static_cast<std::size_t>(fabric.rows()) *
           static_cast<std::size_t>(fabric.cols());
  bytes += graph.node_count() * 32 + graph.edge_count() * 8;
  bytes += traps_near_center.size() * sizeof(TrapId);
  bytes += trap_port_count.size() * sizeof(int);
  const std::lock_guard<std::mutex> lock(landmark_mutex_);
  for (const auto& [key, tables] : landmark_tables_) {
    if (!tables) continue;
    bytes += sizeof(LandmarkTables) +
             tables->landmarks.size() * sizeof(RouteNodeId) +
             (tables->forward.size() + tables->backward.size()) *
                 sizeof(double);
  }
  return bytes;
}

std::uint64_t fabric_fingerprint(const Fabric& fabric) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffULL;
      hash *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(static_cast<std::uint64_t>(fabric.rows()));
  mix(static_cast<std::uint64_t>(fabric.cols()));
  for (int row = 0; row < fabric.rows(); ++row) {
    for (int col = 0; col < fabric.cols(); ++col) {
      hash ^= static_cast<std::uint64_t>(fabric.cell({row, col}));
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

bool same_fabric_layout(const Fabric& a, const Fabric& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int row = 0; row < a.rows(); ++row) {
    for (int col = 0; col < a.cols(); ++col) {
      if (a.cell({row, col}) != b.cell({row, col})) return false;
    }
  }
  return true;
}

std::shared_ptr<const FabricArtifacts> FabricArtifactCache::get(
    const Fabric& fabric) {
  const std::uint64_t key = fabric_fingerprint(fabric);
  const auto find_in_bucket =
      [&fabric](std::vector<Entry>& bucket) -> Entry* {
    for (Entry& entry : bucket) {
      if (same_fabric_layout(entry.artifacts->fabric, fabric)) return &entry;
    }
    return nullptr;
  };
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (Entry* entry = find_in_bucket(it->second)) {
        ++stats_.hits;
        entry->last_used = ++tick_;
        auto artifacts = entry->artifacts;
        enforce_budget_locked(artifacts.get());
        return artifacts;
      }
    }
  }
  // Build outside the lock: artifact construction (CSR packing) is the
  // expensive part and must not serialize unrelated lookups. A concurrent
  // first-sight of the same layout may build twice; the first insert wins.
  auto built = std::make_shared<const FabricArtifacts>(fabric);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = entries_[key];
  if (Entry* entry = find_in_bucket(bucket)) {
    ++stats_.hits;
    entry->last_used = ++tick_;
    return entry->artifacts;
  }
  ++stats_.builds;
  bucket.push_back(Entry{std::move(built), ++tick_});
  auto artifacts = bucket.back().artifacts;
  enforce_budget_locked(artifacts.get());
  return artifacts;
}

void FabricArtifactCache::set_budget_bytes(std::size_t budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget;
  enforce_budget_locked(nullptr);
}

void FabricArtifactCache::enforce_budget_locked(const FabricArtifacts* keep) {
  std::size_t total = 0;
  for (const auto& [key, bucket] : entries_) {
    for (const Entry& entry : bucket) {
      total += entry.artifacts->memory_bytes();
    }
  }
  while (budget_bytes_ > 0 && total > budget_bytes_) {
    // LRU victim scan: the caches here hold a handful of fabrics, so a
    // linear scan beats maintaining an intrusive list under the same lock.
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t victim_key = 0;
    std::size_t victim_pos = 0;
    bool found = false;
    for (const auto& [key, bucket] : entries_) {
      for (std::size_t pos = 0; pos < bucket.size(); ++pos) {
        if (bucket[pos].artifacts.get() == keep) continue;
        if (bucket[pos].last_used < oldest) {
          oldest = bucket[pos].last_used;
          victim_key = key;
          victim_pos = pos;
          found = true;
        }
      }
    }
    if (!found) break;  // only the protected entry remains
    auto bucket_it = entries_.find(victim_key);
    total -= bucket_it->second[victim_pos].artifacts->memory_bytes();
    bucket_it->second.erase(bucket_it->second.begin() +
                            static_cast<std::ptrdiff_t>(victim_pos));
    if (bucket_it->second.empty()) entries_.erase(bucket_it);
    ++stats_.evictions;
  }
  stats_.bytes = total;
}

FabricArtifactCache::Stats FabricArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

LandmarkCacheStats FabricArtifactCache::landmark_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  LandmarkCacheStats total;
  for (const auto& [key, bucket] : entries_) {
    for (const auto& entry : bucket) {
      const LandmarkCacheStats stats = entry.artifacts->landmark_stats();
      total.builds += stats.builds;
      total.hits += stats.hits;
    }
  }
  return total;
}

std::size_t FabricArtifactCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, bucket] : entries_) total += bucket.size();
  return total;
}

void FabricArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

}  // namespace qspr
