#include "core/engine.hpp"

#include <map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "core/monte_carlo.hpp"
#include "core/mvfb.hpp"
#include "core/placer.hpp"
#include "core/scheduler.hpp"
#include "route/pathfinder.hpp"

namespace qspr {

namespace {

/// Trap-to-trap relocations of a control trace: per (instruction, operand)
/// the trap it departed and the trap it arrived in. Ops of one operand are
/// chronological within the trace, so first move's `from` / last move's `to`
/// bracket the relocation.
std::vector<NetRequest> relocation_nets(const Trace& trace,
                                        const Fabric& fabric) {
  std::map<std::pair<std::int32_t, std::int32_t>,
           std::pair<Position, Position>>
      spans;
  std::vector<std::pair<std::int32_t, std::int32_t>> order;
  for (const MicroOp& op : trace.ops()) {
    if (op.kind != MicroOpKind::Move) continue;
    const auto key = std::make_pair(op.instruction.value(), op.qubit.value());
    const auto [it, inserted] =
        spans.try_emplace(key, std::make_pair(op.from, op.to));
    if (inserted) {
      order.push_back(key);
    } else {
      it->second.second = op.to;
    }
  }
  std::vector<NetRequest> nets;
  for (const auto& key : order) {
    const auto& [begin, end] = spans.at(key);
    const TrapId from = fabric.trap_at(begin);
    const TrapId to = fabric.trap_at(end);
    if (from.is_valid() && to.is_valid() && from != to) {
      nets.push_back({from, to});
    }
  }
  return nets;
}

NegotiationDiagnostics diagnose_negotiation(
    const FabricArtifacts& artifacts, const TechnologyParams& tech,
    const Trace& trace, Executor& executor, const MapperOptions& mapper,
    const CachedMapResult* warm, std::vector<NetRequest>* nets_out,
    std::vector<RoutedPath>* paths_out,
    std::vector<double>* history_out = nullptr,
    double* present_factor_out = nullptr) {
  NegotiationDiagnostics diagnostics;
  diagnostics.route_jobs = mapper.route_jobs;
  const RoutingGraph& routing_graph = artifacts.graph;
  std::vector<NetRequest> nets = relocation_nets(trace, routing_graph.fabric());
  diagnostics.nets = static_cast<int>(nets.size());
  if (nets.empty()) {
    diagnostics.converged = true;
    diagnostics.heuristic_weight = mapper.route_heuristic_weight;
    if (nets_out != nullptr) nets_out->clear();
    if (paths_out != nullptr) paths_out->clear();
    return diagnostics;
  }
  // Net-parallel negotiation on the engine's shared executor; bit-identical
  // to the serial loop at any route_jobs / worker count, so the diagnostic
  // never depends on how it was parallelised.
  PathFinderOptions options;
  options.route_jobs = mapper.route_jobs;
  options.alt_landmarks = mapper.route_landmarks;
  options.heuristic_weight = mapper.route_heuristic_weight;
  // Landmark tables come from the per-fabric cache, so a batch of programs
  // against one fabric pays the 2K-Dijkstra build exactly once. Tables must
  // match the search's base costs (t_move and the turn-aware turn cost —
  // the same expression route_nets_negotiated uses).
  std::shared_ptr<const LandmarkTables> landmarks;
  if (options.alt_landmarks > 0) {
    const double turn_cost =
        options.turn_aware ? static_cast<double>(tech.t_turn) : 0.1;
    landmarks = artifacts.landmark_tables(static_cast<double>(tech.t_move),
                                          turn_cost, options.alt_landmarks);
    options.landmarks = landmarks.get();
  }
  // Warm start: seed from a converged prior's routed nets plus its ledger
  // history and final present factor (the negotiation state that makes
  // edits stable — see WarmStartSeed). Seeding only changes *how much work*
  // the negotiation does — a prior of the identical net set converges at
  // iteration 1 with zero searches and bit-identical paths, and an edited
  // set re-routes only the delta.
  WarmStartSeed seed;
  if (warm != nullptr && warm->converged && !warm->nets.empty()) {
    seed = make_warm_seed(warm->nets, warm->paths, nets, warm->route_history,
                          warm->route_present_factor);
    options.warm = &seed;
  }
  PathFinderScratch scratch;
  PathFinderScratchPool pool;
  PathFinderResult negotiated = route_nets_negotiated(
      routing_graph, tech, nets, options, scratch, executor, pool);
  diagnostics.iterations_used = negotiated.iterations_used;
  diagnostics.converged = negotiated.converged;
  diagnostics.overused_resources = negotiated.overused_resources;
  diagnostics.max_overuse = negotiated.max_overuse;
  diagnostics.total_excess = negotiated.total_excess;
  diagnostics.min_feasible_excess = negotiated.min_feasible_excess;
  diagnostics.searches_performed = negotiated.searches_performed;
  diagnostics.total_delay = negotiated.total_delay;
  diagnostics.speculative_commits = negotiated.speculative_commits;
  diagnostics.speculative_reroutes = negotiated.speculative_reroutes;
  diagnostics.landmarks_used = negotiated.landmarks_used;
  diagnostics.heuristic_weight = negotiated.heuristic_weight;
  diagnostics.alt_refreshes = negotiated.alt_refreshes;
  diagnostics.nodes_settled = negotiated.nodes_settled;
  diagnostics.warm_seeded = negotiated.warm_seeded;
  diagnostics.warm_kept = negotiated.warm_kept;
  if (nets_out != nullptr) *nets_out = std::move(nets);
  if (paths_out != nullptr) *paths_out = std::move(negotiated.paths);
  if (history_out != nullptr) *history_out = std::move(negotiated.history);
  if (present_factor_out != nullptr) {
    *present_factor_out = negotiated.final_present_factor;
  }
  return diagnostics;
}

}  // namespace

/// One staged job. Heap-held behind PendingMap so every address the
/// submitted trial bodies capture (QIDG, rank, simulators) stays stable
/// while the handle moves around.
struct MappingEngine::PendingState {
  enum class Flow : std::uint8_t { Ideal, Single, MonteCarlo, Mvfb };

  MapJob job;
  Stopwatch stopwatch;
  std::shared_ptr<const FabricArtifacts> artifacts;
  DependencyGraph qidg;
  ExecutionOptions exec;
  std::vector<int> rank;
  /// Pre-filled by begin() (kind, jobs, ideal latency); completed by
  /// finish().
  MapResult result;
  Flow flow = Flow::Ideal;

  // Flow::Mvfb
  std::unique_ptr<MvfbPlacer> mvfb;
  MvfbPlacer::AsyncRun mvfb_run;
  // Flow::MonteCarlo
  MonteCarloRun mc_run;
  // Flow::Single — one execution submitted as a 1-index job.
  struct SingleState {
    Placement initial;
    ExecutionResult execution;
    double trial_cpu_ms = 0.0;
  };
  std::shared_ptr<SingleState> single;
  Executor::Job single_job;

  /// Program-derived setup (QIDG, rank, trial submission) runs here so batch
  /// staging overlaps it with other jobs' trials. The flow-job handles above
  /// are written by this job; wait on it before reading them.
  Executor::Job setup_job;

  Executor* executor = nullptr;
  bool collected = false;

  ~PendingState() {
    if (collected || executor == nullptr) return;
    // Drain an abandoned job so the trial bodies' captures (which point
    // into this object) cannot outlive it. Failures were never collected;
    // swallow them. The setup job goes first: waiting it makes the flow-job
    // handles it submitted visible and valid.
    try {
      if (setup_job.valid()) executor->wait(setup_job);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (mvfb_run.valid()) executor->wait(mvfb_run.job());
      if (mc_run.valid()) executor->wait(mc_run.job());
      if (single_job.valid()) executor->wait(single_job);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
};

MappingEngine::PendingMap::PendingMap() = default;
MappingEngine::PendingMap::PendingMap(PendingMap&&) noexcept = default;
MappingEngine::PendingMap& MappingEngine::PendingMap::operator=(
    PendingMap&&) noexcept = default;
MappingEngine::PendingMap::~PendingMap() = default;

const std::string& MappingEngine::PendingMap::name() const {
  require(state_ != nullptr, "name() needs a staged job");
  return state_->job.name;
}

MappingEngine::MappingEngine(int workers) : executor_(workers) {}
MappingEngine::~MappingEngine() = default;

int MappingEngine::worker_count() const { return executor_.worker_count(); }
Executor& MappingEngine::executor() { return executor_; }
FabricArtifactCache& MappingEngine::artifacts() { return cache_; }
ResultCache& MappingEngine::results() { return result_cache_; }

ResultCache::Key MappingEngine::result_key(const Program& program,
                                           const Fabric& fabric,
                                           const MapperOptions& options) {
  return ResultCache::Key{program_fingerprint(program),
                          fabric_fingerprint(fabric),
                          mapper_options_fingerprint(options)};
}

void MappingEngine::set_cache_budget_bytes(std::size_t budget) {
  cache_.set_budget_bytes(budget == 0 ? 0 : budget / 2);
  result_cache_.set_budget_bytes(budget == 0 ? 0 : budget / 2);
}

MappingEngine::PendingMap MappingEngine::begin(const MapJob& job) {
  require(job.program != nullptr && job.fabric != nullptr,
          "MapJob needs a program and a fabric");
  require(job.options.route_jobs >= 1,
          "MapJob needs at least one route worker (route_jobs >= 1)");
  require(job.options.route_landmarks >= 0,
          "MapJob route_landmarks must be >= 0 (0 disables ALT)");
  require(job.options.route_heuristic_weight >= 1.0,
          "MapJob route_heuristic_weight must be >= 1 (1.0 is exact)");
  // A job cancelled (or expired) before staging fails here, before any
  // artifact build or trial submission consumes shared capacity.
  job.cancel.check();
  const MapperOptions& options = job.options;

  auto state = std::make_unique<PendingState>();
  state->executor = &executor_;
  state->job = job;

  MapResult& result = state->result;
  result.kind = options.kind;
  result.jobs = executor_.worker_count();

  // Flow selection and fabric-artifact resolution stay on the calling
  // thread — the cache is the only reader of the caller's fabric, so the
  // begin()-reads-the-fabric contract holds. The program-derived setup
  // (QIDG build, critical path, schedule rank) runs as an executor job that
  // then nested-submits the placement trials, so a batch coordinator
  // staging job N+1 overlaps its setup with job N's trials.
  if (options.kind == MapperKind::IdealBaseline) {
    // The ideal bound needs no routing artifacts at all — don't build any.
    state->flow = PendingState::Flow::Ideal;
    result.placement_runs = 0;
  } else {
    state->artifacts = cache_.get(*job.fabric);
    state->exec = execution_options_for(options);
    if (options.kind != MapperKind::Qspr ||
        options.placer == PlacerKind::Center) {
      // Single-placement flows: QUALE / QPOS (center placement, §I) or a
      // QSPR ablation with the center placer.
      state->flow = PendingState::Flow::Single;
      state->single = std::make_shared<PendingState::SingleState>();
    } else if (options.placer == PlacerKind::MonteCarlo) {
      state->flow = PendingState::Flow::MonteCarlo;
    } else {
      state->flow = PendingState::Flow::Mvfb;
    }
  }

  state->setup_job = executor_.submit(1, [s = state.get()](std::size_t, int) {
    const CancelToken cancel = s->job.cancel;
    cancel.check();
    const ThreadCpuTimer setup_watch;
    const MapperOptions& opts = s->job.options;
    s->qidg = DependencyGraph::build(*s->job.program);
    s->result.ideal_latency = s->qidg.critical_path_latency(opts.tech);
    if (s->flow == PendingState::Flow::Ideal) {
      s->result.latency = s->result.ideal_latency;
      s->result.setup_ms = setup_watch.elapsed_ms();
      return;
    }
    const FabricArtifacts& artifacts = *s->artifacts;
    s->rank = make_schedule_rank(s->qidg, s->exec.tech,
                                 schedule_options_for(opts));
    // Trial submission is the job's last act, and nothing below can throw
    // after a flow job exists: when finish()'s setup wait rethrows, no trial
    // handle was ever created.
    switch (s->flow) {
      case PendingState::Flow::Ideal:
        break;  // handled above
      case PendingState::Flow::Single:
        s->single->initial = center_placement_from(
            artifacts.traps_near_center, s->job.program->qubit_count());
        s->result.setup_ms = setup_watch.elapsed_ms();
        s->single_job = s->executor->submit(
            1, [s, keep = s->artifacts, cancel](std::size_t, int) {
              cancel.check();
              const ThreadCpuTimer watch;
              s->single->execution =
                  execute_circuit(s->qidg, keep->fabric, keep->graph, s->rank,
                                  s->single->initial, s->exec);
              s->single->trial_cpu_ms = watch.elapsed_ms();
            });
        break;
      case PendingState::Flow::MonteCarlo:
        s->result.setup_ms = setup_watch.elapsed_ms();
        s->mc_run = monte_carlo_submit(
            s->qidg, artifacts.fabric, artifacts.graph, s->rank, s->exec,
            opts.monte_carlo_trials, opts.rng_seed, *s->executor,
            &artifacts.traps_near_center, cancel);
        break;
      case PendingState::Flow::Mvfb:
        s->mvfb = std::make_unique<MvfbPlacer>(
            s->qidg, artifacts.fabric, artifacts.graph, s->rank, s->exec,
            MvfbOptions{opts.mvfb_seeds, 3, 64, opts.rng_seed,
                        s->executor->worker_count(), cancel},
            &artifacts.traps_near_center);
        s->result.setup_ms = setup_watch.elapsed_ms();
        s->mvfb_run = s->mvfb->submit(*s->executor);
        break;
    }
  });
  PendingMap pending;
  pending.state_ = std::move(state);
  return pending;
}

MapResult MappingEngine::finish(PendingMap pending) {
  require(pending.valid(), "finish() needs a staged job");
  PendingState& state = *pending.state_;
  require(!state.collected, "finish() called twice on one job");
  state.collected = true;
  // Setup first: it wrote ideal_latency/setup_ms into the result and
  // submitted the flow job whose handle the switch below waits on. A setup
  // failure (cancelled job, malformed program) rethrows here before any
  // flow handle exists.
  executor_.wait(state.setup_job);
  MapResult result = std::move(state.result);

  const auto finish_single = [&](const Placement& initial,
                                 ExecutionResult&& execution) {
    result.latency = execution.latency;
    result.trace = std::move(execution.trace);
    result.initial_placement = initial;
    result.final_placement = std::move(execution.final_placement);
    result.stats = execution.stats;
    result.timings = std::move(execution.timings);
  };

  switch (state.flow) {
    case PendingState::Flow::Ideal:
      break;
    case PendingState::Flow::Single: {
      executor_.wait(state.single_job);
      result.trial_cpu_ms = state.single->trial_cpu_ms;
      finish_single(state.single->initial,
                    std::move(state.single->execution));
      result.placement_runs = 1;
      break;
    }
    case PendingState::Flow::MonteCarlo: {
      MonteCarloResult mc = monte_carlo_collect(executor_, state.mc_run);
      result.trial_cpu_ms = mc.trial_cpu_ms;
      finish_single(mc.best_initial_placement, std::move(mc.best_execution));
      result.placement_runs = mc.trials;
      break;
    }
    case PendingState::Flow::Mvfb: {
      MvfbResult mvfb = state.mvfb->collect(executor_, state.mvfb_run);
      result.trial_cpu_ms = mvfb.trial_cpu_ms;
      result.latency = mvfb.best_latency;
      result.trace = std::move(mvfb.best_trace);
      result.initial_placement = std::move(mvfb.best_initial_placement);
      // For a backward winner the reported (time-reversed) execution ends
      // where the backward run began.
      result.final_placement = mvfb.best_is_backward
                                   ? mvfb.best_execution.initial_placement
                                   : mvfb.best_execution.final_placement;
      result.stats = mvfb.best_execution.stats;
      result.timings = std::move(mvfb.best_execution.timings);
      result.placement_runs = mvfb.total_runs;
      break;
    }
  }

  // Stop the clock before the optional diagnostic: cpu_ms reports the
  // mapping itself, and must not depend on whether a report was requested.
  // Under a shared executor this is wall time from begin() to finish(), so
  // it includes time spent interleaved with other jobs' trials.
  result.cpu_ms = state.stopwatch.elapsed_ms();
  if (state.job.options.negotiation_report && result.trace.size() > 0) {
    std::vector<NetRequest> nets;
    std::vector<RoutedPath> paths;
    std::vector<double> history;
    double present_factor = 0.0;
    result.negotiation = diagnose_negotiation(
        *state.artifacts, state.exec.tech, result.trace, executor_,
        state.job.options, state.job.warm.get(), &nets, &paths, &history,
        &present_factor);
    result.warm_hits = result.negotiation->warm_kept;
    result.nets_rerouted =
        result.negotiation->nets - result.negotiation->warm_kept;
    if (state.job.cache_result && result.negotiation->converged) {
      auto cached = std::make_shared<CachedMapResult>();
      cached->result = result;
      cached->nets = std::move(nets);
      cached->paths = std::move(paths);
      cached->route_history = std::move(history);
      cached->route_present_factor = present_factor;
      cached->converged = true;
      result_cache_.insert(result_key(*state.job.program, state.artifacts->fabric,
                                      state.job.options),
                           std::move(cached));
    }
  }
  return result;
}

MapResult MappingEngine::map(const Program& program, const Fabric& fabric,
                             const MapperOptions& options) {
  MapJob job;
  job.program = &program;
  job.fabric = &fabric;
  job.options = options;
  job.name = program.name();
  return finish(begin(job));
}

}  // namespace qspr
