#include "core/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace qspr {

namespace {

/// Converts a "higher priority value first" score into dense ranks.
template <typename Score>
std::vector<int> ranks_by_descending(const std::vector<Score>& score) {
  std::vector<std::size_t> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&score](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  std::vector<int> rank(score.size());
  for (std::size_t position = 0; position < order.size(); ++position) {
    rank[order[position]] = static_cast<int>(position);
  }
  return rank;
}

}  // namespace

std::vector<int> make_schedule_rank(const DependencyGraph& graph,
                                    const TechnologyParams& params,
                                    const ScheduleOptions& options) {
  const std::size_t n = graph.node_count();
  switch (options.policy) {
    case SchedulePolicy::QsprPriority: {
      const std::vector<int> dependents = graph.descendant_counts();
      const std::vector<Duration> longest = graph.longest_path_to_sink(params);
      std::vector<double> score(n);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] = options.alpha * static_cast<double>(dependents[i]) +
                   options.beta * static_cast<double>(longest[i]);
      }
      return ranks_by_descending(score);
    }
    case SchedulePolicy::Alap: {
      const std::vector<TimePoint> alap = graph.alap_start_times(params);
      std::vector<double> score(n);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] = -static_cast<double>(alap[i]);  // earlier deadline first
      }
      return ranks_by_descending(score);
    }
    case SchedulePolicy::AsapDependents: {
      const std::vector<int> dependents = graph.descendant_counts();
      std::vector<double> score(n);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] = static_cast<double>(dependents[i]);
      }
      return ranks_by_descending(score);
    }
    case SchedulePolicy::TotalDependentDelay: {
      const std::vector<Duration> delays = graph.descendant_delay_sums(params);
      std::vector<double> score(n);
      for (std::size_t i = 0; i < n; ++i) {
        score[i] = static_cast<double>(delays[i]);
      }
      return ranks_by_descending(score);
    }
  }
  throw Error("unknown schedule policy");
}

std::vector<InstructionId> schedule_order(const std::vector<int>& rank) {
  std::vector<InstructionId> order(rank.size());
  for (std::size_t i = 0; i < rank.size(); ++i) {
    require(rank[i] >= 0 && rank[i] < static_cast<int>(rank.size()),
            "rank vector is not a permutation");
    InstructionId& slot = order[static_cast<std::size_t>(rank[i])];
    require(!slot.is_valid(), "rank vector contains duplicates");
    slot = InstructionId::from_index(i);
  }
  return order;
}

std::vector<int> reversed_rank(const std::vector<int>& rank) {
  const int n = static_cast<int>(rank.size());
  std::vector<int> reversed(rank.size());
  for (std::size_t i = 0; i < rank.size(); ++i) {
    reversed[i] = n - 1 - rank[i];
  }
  return reversed;
}

}  // namespace qspr
