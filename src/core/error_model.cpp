#include "core/error_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qspr {

void ErrorModelParams::validate() const {
  const auto is_probability = [](double p) { return p >= 0.0 && p < 1.0; };
  if (!is_probability(error_1q_gate) || !is_probability(error_2q_gate) ||
      !is_probability(error_move) || !is_probability(error_turn)) {
    throw ValidationError("error probabilities must be in [0, 1)");
  }
  if (t2_us <= 0.0) throw ValidationError("T2 must be positive");
}

FidelityEstimate estimate_fidelity(const Trace& trace,
                                   std::size_t qubit_count,
                                   std::size_t two_qubit_gate_count,
                                   const ErrorModelParams& params) {
  params.validate();

  FidelityEstimate estimate;
  estimate.makespan = trace.makespan();
  estimate.moves = trace.move_count();
  estimate.turns = trace.turn_count();
  const std::size_t total_gates = trace.gate_count();
  require(two_qubit_gate_count <= total_gates,
          "more 2-qubit gates than gate ops in the trace");
  estimate.gates_2q = two_qubit_gate_count;
  estimate.gates_1q = total_gates - two_qubit_gate_count;

  // Work in log space: log P(survival) = sum log(1 - p_op).
  double log_operations = 0.0;
  log_operations += static_cast<double>(estimate.gates_1q) *
                    std::log1p(-params.error_1q_gate);
  log_operations += static_cast<double>(estimate.gates_2q) *
                    std::log1p(-params.error_2q_gate);
  log_operations +=
      static_cast<double>(estimate.moves) * std::log1p(-params.error_move);
  log_operations +=
      static_cast<double>(estimate.turns) * std::log1p(-params.error_turn);
  estimate.operation_fidelity = std::exp(log_operations);

  // Idle decoherence: every qubit exists for the whole makespan.
  const double log_decoherence =
      -static_cast<double>(qubit_count) *
      static_cast<double>(estimate.makespan) / params.t2_us;
  estimate.decoherence_fidelity = std::exp(log_decoherence);

  estimate.circuit_fidelity = std::exp(log_operations + log_decoherence);
  return estimate;
}

double reliability_nines(const FidelityEstimate& estimate) {
  const double failure = 1.0 - estimate.circuit_fidelity;
  if (failure <= 0.0) return 16.0;  // beyond double precision
  return -std::log10(failure);
}

}  // namespace qspr
