// Connectivity-driven placement — the "standard VLSI placement" strawman the
// paper contrasts MVFB against (§IV.A: such placers "consider only node
// connectivity ... in the given netlist" and ignore the schedule).
//
// Greedy construction: qubits are placed in decreasing order of interaction
// weight (number of shared 2-qubit gates); each qubit takes the free
// nearest-center trap that minimises its summed weighted Manhattan distance
// to already-placed interaction partners. Deterministic.
#pragma once

#include "circuit/program.hpp"
#include "fabric/fabric.hpp"
#include "sim/placement.hpp"

namespace qspr {

/// Builds the qubit interaction matrix: weight[i][j] = number of 2-qubit
/// gates acting on qubits i and j.
std::vector<std::vector<int>> interaction_weights(const Program& program);

/// Greedy connectivity placement. Throws ValidationError when the fabric has
/// fewer traps than qubits.
Placement connectivity_placement(const Fabric& fabric, const Program& program);

}  // namespace qspr
