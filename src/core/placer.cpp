#include "core/placer.hpp"

#include <vector>

#include "common/error.hpp"

namespace qspr {

namespace {

std::vector<TrapId> nearest_center_traps(const Fabric& fabric,
                                         std::size_t qubit_count) {
  if (fabric.trap_count() < qubit_count) {
    throw ValidationError("fabric has fewer traps than circuit qubits");
  }
  std::vector<TrapId> traps = fabric.traps_by_distance(fabric.center());
  traps.resize(qubit_count);
  return traps;
}

}  // namespace

Placement center_placement(const Fabric& fabric, std::size_t qubit_count) {
  const std::vector<TrapId> traps = nearest_center_traps(fabric, qubit_count);
  Placement placement(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    placement.set(QubitId::from_index(q), traps[q]);
  }
  return placement;
}

Placement random_center_placement(const Fabric& fabric,
                                  std::size_t qubit_count, Rng& rng) {
  std::vector<TrapId> traps = nearest_center_traps(fabric, qubit_count);
  rng.shuffle(traps);
  Placement placement(qubit_count);
  for (std::size_t q = 0; q < qubit_count; ++q) {
    placement.set(QubitId::from_index(q), traps[q]);
  }
  return placement;
}

}  // namespace qspr
