#include "core/placer.hpp"

#include <vector>

#include "common/error.hpp"

namespace qspr {

namespace {

std::vector<TrapId> nearest_traps_prefix(
    const std::vector<TrapId>& traps_near_center, std::size_t qubit_count) {
  if (traps_near_center.size() < qubit_count) {
    throw ValidationError("fabric has fewer traps than circuit qubits");
  }
  return {traps_near_center.begin(),
          traps_near_center.begin() + static_cast<std::ptrdiff_t>(qubit_count)};
}

Placement place_on(const std::vector<TrapId>& traps) {
  Placement placement(traps.size());
  for (std::size_t q = 0; q < traps.size(); ++q) {
    placement.set(QubitId::from_index(q), traps[q]);
  }
  return placement;
}

}  // namespace

Placement center_placement(const Fabric& fabric, std::size_t qubit_count) {
  return center_placement_from(fabric.traps_by_distance(fabric.center()),
                               qubit_count);
}

Placement random_center_placement(const Fabric& fabric,
                                  std::size_t qubit_count, Rng& rng) {
  return random_center_placement_from(
      fabric.traps_by_distance(fabric.center()), qubit_count, rng);
}

Placement center_placement_from(const std::vector<TrapId>& traps_near_center,
                                std::size_t qubit_count) {
  return place_on(nearest_traps_prefix(traps_near_center, qubit_count));
}

Placement random_center_placement_from(
    const std::vector<TrapId>& traps_near_center, std::size_t qubit_count,
    Rng& rng) {
  std::vector<TrapId> traps =
      nearest_traps_prefix(traps_near_center, qubit_count);
  rng.shuffle(traps);
  return place_on(traps);
}

}  // namespace qspr
