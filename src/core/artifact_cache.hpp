// Read-only per-fabric mapping artifacts and the cache that shares them
// across jobs.
//
// Every mapping job derives the same heavyweight structures from its fabric:
// the CSR routing graph (the dominant build), the traps-by-distance-to-
// center table the placers draw initial placements from, and the per-trap
// port-capacity table behind the PathFinder's structural-excess floor. A
// batch service mapping many programs against few fabrics should build them
// once per *distinct* fabric and share them const across jobs — which is
// sound because PR 2 made every consumer (Router, EventSimulator,
// PathFinder) const-callable over shared graphs, with all mutable search
// state thread-confined in per-worker arenas.
//
// The cache keys on a fingerprint of the fabric *layout* (cell grid), not on
// object identity or name: two Fabric instances parsed from the same drawing
// hit the same entry. Each entry owns a private copy of the fabric so the
// artifacts never dangle when a caller's Fabric goes out of scope; derived
// structures (trap ids, segments, routing nodes) are deterministic functions
// of the layout, so mapping against the owned copy is bit-identical to
// mapping against the caller's original.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "route/landmarks.hpp"
#include "route/routing_graph.hpp"

namespace qspr {

/// Build/hit counters of the lazily-built landmark tables (see
/// FabricArtifacts::landmark_tables).
struct LandmarkCacheStats {
  long long builds = 0;  // table sets constructed (2K Dijkstras each)
  long long hits = 0;    // requests served from an existing table set
};

/// Immutable bundle of everything the mapping pipeline derives from one
/// fabric. Shared const across concurrent jobs.
struct FabricArtifacts {
  explicit FabricArtifacts(const Fabric& source);

  /// Owned copy: the artifacts outlive any caller's Fabric instance.
  Fabric fabric;
  /// CSR routing graph over `fabric` (paper §IV.B enhanced model).
  RoutingGraph graph;
  /// All traps ordered by Manhattan distance from the fabric center — the
  /// table every center/random-center placement draws from (paper §I).
  std::vector<TrapId> traps_near_center;
  /// Per-trap access-port count: the port-capacity input of the structural
  /// excess floor (a trap with endpoint demand above port capacity forces
  /// residual over-use no router can remove).
  std::vector<int> trap_port_count;

  /// Base-floor ALT landmark tables for (t_move, turn_cost, k), built on
  /// first request and shared const afterwards — the tables depend only on
  /// the fabric layout and those three knobs, so every job against this
  /// fabric reuses one set. The build runs under the per-fabric mutex:
  /// concurrent first requests (the batch common case — many programs, one
  /// fabric) block briefly and then hit, so `builds` counts exactly one
  /// construction per distinct key. Returns nullptr when k <= 0.
  std::shared_ptr<const LandmarkTables> landmark_tables(double t_move,
                                                        double turn_cost,
                                                        int k) const;
  [[nodiscard]] LandmarkCacheStats landmark_stats() const;

  /// Estimated resident bytes of this bundle: fabric grid + routing graph +
  /// placement tables + every landmark table built so far. Landmark tables
  /// are built lazily *after* the bundle is cached, so the estimate grows
  /// over the bundle's lifetime — the budget enforcement recomputes it per
  /// lookup rather than freezing an insert-time number.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  mutable std::mutex landmark_mutex_;
  mutable std::map<std::tuple<double, double, int>,
                   std::shared_ptr<const LandmarkTables>>
      landmark_tables_;
  mutable LandmarkCacheStats landmark_stats_;
};

/// 64-bit FNV-1a fingerprint of the fabric layout (dimensions + cell grid).
[[nodiscard]] std::uint64_t fabric_fingerprint(const Fabric& fabric);

/// Exact layout equality (dimensions + every cell) — what the fingerprint
/// approximates.
[[nodiscard]] bool same_fabric_layout(const Fabric& a, const Fabric& b);

/// Thread-safe fingerprint-keyed cache of FabricArtifacts with an optional
/// LRU memory budget (set_budget_bytes). Eviction drops the cache's
/// reference only: jobs holding a shared_ptr to an evicted bundle — and the
/// landmark tables inside it — keep it alive until they finish.
class FabricArtifactCache {
 public:
  struct Stats {
    long long builds = 0;     // cache misses: artifact bundles constructed
    long long hits = 0;       // lookups served from an existing bundle
    long long evictions = 0;  // bundles dropped by the memory budget
    /// Estimated resident bytes of the cached bundles at the last lookup.
    std::size_t bytes = 0;
  };

  /// Returns the artifacts for `fabric`, building them on first sight of
  /// this layout.
  std::shared_ptr<const FabricArtifacts> get(const Fabric& fabric);

  /// LRU memory budget in bytes (0 = unlimited, the default). When the
  /// estimated total exceeds it, least-recently-used bundles are evicted —
  /// never the one the current lookup is about to return, so a budget
  /// smaller than one bundle degrades to "cache of one", not thrash-to-
  /// empty.
  void set_budget_bytes(std::size_t budget);

  [[nodiscard]] Stats stats() const;
  /// Landmark-table build/hit counters aggregated over every cached fabric.
  [[nodiscard]] LandmarkCacheStats landmark_stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const FabricArtifacts> artifacts;
    std::uint64_t last_used = 0;  // lookup tick, for LRU ordering
  };

  /// Evicts LRU entries until the estimated total fits the budget, keeping
  /// `keep` alive. Caller holds mutex_.
  void enforce_budget_locked(const FabricArtifacts* keep);

  // Fingerprint buckets hold every distinct layout that hashed there; hits
  // verify exact layout equality, so a 64-bit collision costs one extra
  // build instead of silently mapping against the wrong fabric.
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> entries_;
  Stats stats_;
  std::size_t budget_bytes_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace qspr
