// Full-text mapping report: everything a user wants to see after mapping a
// circuit — the latency summary with Eq. 1 decomposition, per-instruction
// timing table, channel-utilisation summary, execution Gantt chart and a
// fidelity estimate. Used by the qspr_map CLI (--report) and by examples.
#pragma once

#include <string>

#include "circuit/program.hpp"
#include "core/error_model.hpp"
#include "core/mapper.hpp"
#include "fabric/fabric.hpp"

namespace qspr {

struct ReportOptions {
  bool include_timing_table = true;
  bool include_utilization = true;
  bool include_gantt = true;
  bool include_fidelity = true;
  ErrorModelParams error_model;
};

/// Renders a human-readable report of `result` (produced by map_program for
/// `program` on `fabric`).
std::string make_report(const MapResult& result, const Program& program,
                        const Fabric& fabric, const ReportOptions& options = {});

}  // namespace qspr
