#include "core/mvfb.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/placer.hpp"
#include "core/trial_context.hpp"

namespace qspr {

MvfbPlacer::MvfbPlacer(const DependencyGraph& qidg, const Fabric& fabric,
                       const RoutingGraph& routing_graph,
                       std::vector<int> rank, ExecutionOptions exec_options,
                       MvfbOptions options)
    : qidg_(&qidg),
      uidg_(qidg.reversed()),
      fabric_(&fabric),
      options_(options),
      forward_sim_(qidg, fabric, routing_graph, rank, exec_options),
      backward_sim_(uidg_, fabric, routing_graph, reversed_rank(rank),
                    exec_options) {
  require(options_.seeds >= 1, "MVFB needs at least one seed");
  require(options_.stop_after >= 1, "MVFB stop_after must be positive");
  require(options_.jobs >= 1, "MVFB needs at least one worker");
}

MvfbPlacer::SeedOutcome MvfbPlacer::run_seed(
    Rng seed_rng, SearchArena<Duration>& arena) const {
  SeedOutcome out;
  Placement placement =
      random_center_placement(*fabric_, qidg_->qubit_count(), seed_rng);
  int non_improving = 0;

  const auto record = [&](const ExecutionResult& execution, bool is_backward) {
    if (execution.latency < out.best_latency) {
      out.best_latency = execution.latency;
      out.best_is_backward = is_backward;
      out.best_execution = execution;
      non_improving = 0;
    } else {
      ++non_improving;
    }
  };

  while (non_improving < options_.stop_after &&
         out.runs < options_.max_runs_per_seed) {
    // Forward placement run: QIDG in schedule order S.
    const ExecutionResult forward = forward_sim_.run(placement, arena);
    ++out.runs;
    record(forward, /*is_backward=*/false);
    if (non_improving >= options_.stop_after ||
        out.runs >= options_.max_runs_per_seed) {
      break;
    }

    // Backward placement run: UIDG in reversed order S*, starting from the
    // forward run's final placement.
    const ExecutionResult backward =
        backward_sim_.run(forward.final_placement, arena);
    ++out.runs;
    ++out.iterations;
    record(backward, /*is_backward=*/true);

    // The backward run's final placement seeds the next iteration.
    placement = backward.final_placement;
  }
  return out;
}

MvfbResult MvfbPlacer::place_and_execute() {
  // Fork one RNG per seed up front, in seed order: seed i's stream is a pure
  // function of (rng_seed, i), independent of the worker count and of how
  // the pool interleaves seeds.
  Rng root(options_.rng_seed);
  std::vector<Rng> seed_rngs;
  seed_rngs.reserve(static_cast<std::size_t>(options_.seeds));
  for (int seed = 0; seed < options_.seeds; ++seed) {
    seed_rngs.push_back(root.fork());
  }

  const int workers = std::min(options_.jobs, options_.seeds);
  std::vector<TrialContext> contexts(static_cast<std::size_t>(workers));
  struct WorkerBest {
    TrialContext::Incumbent incumbent;
    SeedOutcome outcome;
    int runs = 0;
    int iterations = 0;
  };
  std::vector<WorkerBest> best(static_cast<std::size_t>(workers));

  ThreadPool pool(workers);
  pool.parallel_for_each(
      static_cast<std::size_t>(options_.seeds),
      [&](std::size_t seed, int worker) {
        TrialContext& ctx = contexts[static_cast<std::size_t>(worker)];
        WorkerBest& local = best[static_cast<std::size_t>(worker)];
        const ThreadCpuTimer watch;
        SeedOutcome out = run_seed(seed_rngs[seed], ctx.arena);
        local.runs += out.runs;
        local.iterations += out.iterations;
        if (local.incumbent.improved_by(out.best_latency, seed)) {
          local.incumbent = {out.best_latency, seed};
          local.outcome = std::move(out);
        }
        ctx.cpu_ms += watch.elapsed_ms();
      });

  // Deterministic cross-worker merge: run counts are order-independent sums;
  // the winner is the global (latency, seed index) minimum.
  MvfbResult result;
  WorkerBest* winner = nullptr;
  for (WorkerBest& candidate : best) {
    result.total_runs += candidate.runs;
    result.total_iterations += candidate.iterations;
    if (winner == nullptr ||
        winner->incumbent.improved_by(candidate.incumbent.latency,
                                      candidate.incumbent.trial_index)) {
      winner = &candidate;
    }
  }
  for (const TrialContext& ctx : contexts) result.trial_cpu_ms += ctx.cpu_ms;

  require(winner != nullptr &&
              winner->incumbent.latency < kInfiniteDuration,
          "MVFB produced no execution");
  result.best_latency = winner->incumbent.latency;
  result.best_is_backward = winner->outcome.best_is_backward;
  result.best_execution = std::move(winner->outcome.best_execution);
  if (result.best_is_backward) {
    // §IV.A: a winning backward computation is reported as its reverse — a
    // forward execution starting from the backward run's *final* placement.
    result.best_initial_placement = result.best_execution.final_placement;
    result.best_trace = result.best_execution.trace.time_reversed();
  } else {
    result.best_initial_placement = result.best_execution.initial_placement;
    result.best_trace = result.best_execution.trace;
  }
  return result;
}

}  // namespace qspr
