#include "core/mvfb.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/placer.hpp"
#include "core/trial_context.hpp"

namespace qspr {

/// Everything one in-flight seed loop owns: the per-seed RNG streams (forked
/// up front by index) and the per-worker scratch/incumbents. Heap-held via
/// shared_ptr so the executor job body outlives AsyncRun moves.
struct MvfbPlacer::AsyncState {
  std::vector<Rng> seed_rngs;
  std::vector<TrialContext> contexts;

  struct WorkerBest {
    TrialContext::Incumbent incumbent;
    SeedOutcome outcome;
    int runs = 0;
    int iterations = 0;
  };
  std::vector<WorkerBest> best;
};

MvfbPlacer::AsyncRun::AsyncRun() = default;
MvfbPlacer::AsyncRun::AsyncRun(AsyncRun&&) noexcept = default;
MvfbPlacer::AsyncRun& MvfbPlacer::AsyncRun::operator=(AsyncRun&&) noexcept =
    default;
MvfbPlacer::AsyncRun::~AsyncRun() = default;

MvfbPlacer::MvfbPlacer(const DependencyGraph& qidg, const Fabric& fabric,
                       const RoutingGraph& routing_graph,
                       std::vector<int> rank, ExecutionOptions exec_options,
                       MvfbOptions options,
                       const std::vector<TrapId>* traps_near_center)
    : qidg_(&qidg),
      uidg_(qidg.reversed()),
      fabric_(&fabric),
      options_(options),
      forward_sim_(qidg, fabric, routing_graph, rank, exec_options),
      backward_sim_(uidg_, fabric, routing_graph, reversed_rank(rank),
                    exec_options),
      traps_near_center_(traps_near_center) {
  require(options_.seeds >= 1, "MVFB needs at least one seed");
  require(options_.stop_after >= 1, "MVFB stop_after must be positive");
  require(options_.jobs >= 1, "MVFB needs at least one worker");
  if (traps_near_center_ == nullptr) {
    owned_traps_near_center_ = fabric.traps_by_distance(fabric.center());
    traps_near_center_ = &owned_traps_near_center_;
  }
}

MvfbPlacer::SeedOutcome MvfbPlacer::run_seed(
    Rng seed_rng, SearchArena<Duration>& arena) const {
  SeedOutcome out;
  Placement placement = random_center_placement_from(
      *traps_near_center_, qidg_->qubit_count(), seed_rng);
  int non_improving = 0;

  const auto record = [&](const ExecutionResult& execution, bool is_backward) {
    if (execution.latency < out.best_latency) {
      out.best_latency = execution.latency;
      out.best_is_backward = is_backward;
      out.best_execution = execution;
      non_improving = 0;
    } else {
      ++non_improving;
    }
  };

  while (non_improving < options_.stop_after &&
         out.runs < options_.max_runs_per_seed) {
    // Cancellation boundary: between placement runs, never mid-execution.
    options_.cancel.check();
    // Forward placement run: QIDG in schedule order S.
    const ExecutionResult forward = forward_sim_.run(placement, arena);
    ++out.runs;
    record(forward, /*is_backward=*/false);
    if (non_improving >= options_.stop_after ||
        out.runs >= options_.max_runs_per_seed) {
      break;
    }

    options_.cancel.check();
    // Backward placement run: UIDG in reversed order S*, starting from the
    // forward run's final placement.
    const ExecutionResult backward =
        backward_sim_.run(forward.final_placement, arena);
    ++out.runs;
    ++out.iterations;
    record(backward, /*is_backward=*/true);

    // The backward run's final placement seeds the next iteration.
    placement = backward.final_placement;
  }
  return out;
}

MvfbPlacer::AsyncRun MvfbPlacer::submit(Executor& executor) {
  auto state = std::make_shared<AsyncState>();
  // Fork one RNG per seed up front, in seed order: seed i's stream is a pure
  // function of (rng_seed, i), independent of the worker count and of how
  // the executor interleaves seeds (even with other jobs in flight).
  Rng root(options_.rng_seed);
  state->seed_rngs.reserve(static_cast<std::size_t>(options_.seeds));
  for (int seed = 0; seed < options_.seeds; ++seed) {
    state->seed_rngs.push_back(root.fork());
  }
  const auto slots = static_cast<std::size_t>(executor.worker_count());
  state->contexts.resize(slots);
  state->best.resize(slots);

  AsyncRun run;
  run.state_ = state;
  run.job_ = executor.submit(
      static_cast<std::size_t>(options_.seeds),
      [this, state](std::size_t seed, int worker) {
        TrialContext& ctx = state->contexts[static_cast<std::size_t>(worker)];
        AsyncState::WorkerBest& local =
            state->best[static_cast<std::size_t>(worker)];
        const ThreadCpuTimer watch;
        SeedOutcome out = run_seed(state->seed_rngs[seed], ctx.arena);
        local.runs += out.runs;
        local.iterations += out.iterations;
        if (local.incumbent.improved_by(out.best_latency, seed)) {
          local.incumbent = {out.best_latency, seed};
          local.outcome = std::move(out);
        }
        ctx.cpu_ms += watch.elapsed_ms();
      });
  return run;
}

MvfbResult MvfbPlacer::collect(Executor& executor, AsyncRun& run) {
  require(run.valid(), "collect() needs a submitted MVFB run");
  executor.wait(run.job_);
  AsyncState& state = *run.state_;

  // Deterministic cross-worker merge: run counts are order-independent sums;
  // the winner is the global (latency, seed index) minimum.
  MvfbResult result;
  AsyncState::WorkerBest* winner = nullptr;
  for (AsyncState::WorkerBest& candidate : state.best) {
    result.total_runs += candidate.runs;
    result.total_iterations += candidate.iterations;
    if (winner == nullptr ||
        winner->incumbent.improved_by(candidate.incumbent.latency,
                                      candidate.incumbent.trial_index)) {
      winner = &candidate;
    }
  }
  for (const TrialContext& ctx : state.contexts) {
    result.trial_cpu_ms += ctx.cpu_ms;
  }

  require(winner != nullptr && winner->incumbent.latency < kInfiniteDuration,
          "MVFB produced no execution");
  result.best_latency = winner->incumbent.latency;
  result.best_is_backward = winner->outcome.best_is_backward;
  result.best_execution = std::move(winner->outcome.best_execution);
  if (result.best_is_backward) {
    // §IV.A: a winning backward computation is reported as its reverse — a
    // forward execution starting from the backward run's *final* placement.
    result.best_initial_placement = result.best_execution.final_placement;
    result.best_trace = result.best_execution.trace.time_reversed();
  } else {
    result.best_initial_placement = result.best_execution.initial_placement;
    result.best_trace = result.best_execution.trace;
  }
  return result;
}

MvfbResult MvfbPlacer::place_and_execute(Executor& executor) {
  AsyncRun run = submit(executor);
  return collect(executor, run);
}

MvfbResult MvfbPlacer::place_and_execute() {
  Executor executor(std::min(options_.jobs, options_.seeds));
  return place_and_execute(executor);
}

}  // namespace qspr
