#include "core/mvfb.hpp"

#include "core/placer.hpp"

namespace qspr {

MvfbPlacer::MvfbPlacer(const DependencyGraph& qidg, const Fabric& fabric,
                       const RoutingGraph& routing_graph,
                       std::vector<int> rank, ExecutionOptions exec_options,
                       MvfbOptions options)
    : qidg_(&qidg),
      uidg_(qidg.reversed()),
      fabric_(&fabric),
      options_(options),
      forward_sim_(qidg, fabric, routing_graph, rank, exec_options),
      backward_sim_(uidg_, fabric, routing_graph, reversed_rank(rank),
                    exec_options) {
  require(options_.seeds >= 1, "MVFB needs at least one seed");
  require(options_.stop_after >= 1, "MVFB stop_after must be positive");
}

bool MvfbPlacer::update_best(MvfbResult& result,
                             const ExecutionResult& execution,
                             bool is_backward) const {
  if (execution.latency >= result.best_latency) return false;
  result.best_latency = execution.latency;
  result.best_is_backward = is_backward;
  result.best_execution = execution;
  if (is_backward) {
    // §IV.A: a winning backward computation is reported as its reverse — a
    // forward execution starting from the backward run's *final* placement.
    result.best_initial_placement = execution.final_placement;
    result.best_trace = execution.trace.time_reversed();
  } else {
    result.best_initial_placement = execution.initial_placement;
    result.best_trace = execution.trace;
  }
  return true;
}

MvfbResult MvfbPlacer::place_and_execute() {
  MvfbResult result;
  Rng rng(options_.rng_seed);

  for (int seed = 0; seed < options_.seeds; ++seed) {
    Rng seed_rng = rng.fork();
    Placement placement =
        random_center_placement(*fabric_, qidg_->qubit_count(), seed_rng);
    int non_improving = 0;
    int runs_this_seed = 0;

    while (non_improving < options_.stop_after &&
           runs_this_seed < options_.max_runs_per_seed) {
      // Forward placement run: QIDG in schedule order S.
      const ExecutionResult forward = forward_sim_.run(placement);
      ++result.total_runs;
      ++runs_this_seed;
      non_improving = update_best(result, forward, /*is_backward=*/false)
                          ? 0
                          : non_improving + 1;
      if (non_improving >= options_.stop_after ||
          runs_this_seed >= options_.max_runs_per_seed) {
        break;
      }

      // Backward placement run: UIDG in reversed order S*, starting from the
      // forward run's final placement.
      const ExecutionResult backward =
          backward_sim_.run(forward.final_placement);
      ++result.total_runs;
      ++runs_this_seed;
      ++result.total_iterations;
      non_improving = update_best(result, backward, /*is_backward=*/true)
                          ? 0
                          : non_improving + 1;

      // The backward run's final placement seeds the next iteration.
      placement = backward.final_placement;
    }
  }
  return result;
}

}  // namespace qspr
