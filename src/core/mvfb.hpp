// The Multi-start Variable-length Forward/Backward (MVFB) placer — the
// paper's placement contribution (§IV.A).
//
// MVFB exploits the reversibility of quantum computation: executing the
// uncompute graph (UIDG) in the reversed schedule order S*, starting from the
// final placement of a forward run, yields a new placement for the *inputs*
// — one that the execution itself has pulled toward where the computation
// wants the qubits. Iterating forward and backward runs is a local search in
// placement space; `m` random center placements multi-start it, and each
// seed's search stops after `stop_after` consecutive placement runs that fail
// to improve the best latency *that seed* has found (seeds are independent
// local searches, which is what makes them trial-parallel: the winner is the
// seed with the lowest latency, ties broken by seed index, so the result is
// bit-identical at any worker count).
//
// The seed loop runs on an Executor. place_and_execute() spawns a private
// one (the original single-job shape); the Executor& overloads and the
// submit/collect pair run the seeds as one job on a *shared* executor, so a
// batch service can interleave many placers' seeds on one worker set.
//
// One "placement run" is a single forward or backward execution; one
// "iteration" is a forward+backward pair. The paper's Table 1 budgets the
// Monte Carlo baseline at twice the number of MVFB iterations, i.e. the same
// number of placement runs.
#pragma once

#include <memory>

#include "circuit/dependency_graph.hpp"
#include "common/cancel.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/scheduler.hpp"
#include "sim/event_sim.hpp"

namespace qspr {

struct MvfbOptions {
  /// Number of random-center placement seeds (the paper's m).
  int seeds = 100;
  /// Stop a seed's local search after this many consecutive placement runs
  /// without improving the best latency this seed has found.
  int stop_after = 3;
  /// Safety bound on runs per seed (far above what the stop rule reaches).
  int max_runs_per_seed = 64;
  std::uint64_t rng_seed = 1;
  /// Worker threads of the private executor spawned by the no-argument
  /// place_and_execute(). The Executor& overloads use the shared executor's
  /// workers instead. Results are bit-identical at any value: per-seed RNGs
  /// are forked up front by seed index and the winner is the
  /// (latency, seed index) minimum.
  int jobs = 1;
  /// Optional cooperative cancellation, polled before every placement run
  /// (each forward or backward execution): once fired, remaining seeds
  /// throw CancelledError and collect() rethrows it per the executor's
  /// per-job fault capture. A token that never fires changes nothing.
  CancelToken cancel;
};

struct MvfbResult {
  Duration best_latency = kInfiniteDuration;
  /// True when the winning run executed the UIDG backward; the reported
  /// trace is then the time-reversed backward trace (§IV.A).
  bool best_is_backward = false;
  /// Initial placement from which `best_trace` (a forward execution of the
  /// QIDG) reproduces best_latency.
  Placement best_initial_placement;
  /// Forward-executable control trace of the winning solution.
  Trace best_trace;
  /// Raw execution result of the winning run (un-reversed).
  ExecutionResult best_execution;
  /// Total placement runs (forward or backward executions).
  int total_runs = 0;
  /// Completed forward+backward pairs.
  int total_iterations = 0;
  /// Thread-CPU time spent inside seed evaluations, summed over workers.
  double trial_cpu_ms = 0.0;
};

class MvfbPlacer {
  struct AsyncState;  // in-flight seed-loop state, defined in mvfb.cpp

 public:
  /// `rank` is the QIDG issue priority (S); the backward rank S* is derived.
  /// `traps_near_center` (optional) is a precomputed traps-by-center table
  /// (FabricArtifacts::traps_near_center) that must outlive the placer; when
  /// null the placer derives its own once.
  MvfbPlacer(const DependencyGraph& qidg, const Fabric& fabric,
             const RoutingGraph& routing_graph, std::vector<int> rank,
             ExecutionOptions exec_options, MvfbOptions options,
             const std::vector<TrapId>* traps_near_center = nullptr);

  /// In-flight seed loop on a shared executor; created by submit(), finished
  /// by collect(). The placer must outlive the run.
  class AsyncRun {
   public:
    AsyncRun();
    AsyncRun(AsyncRun&&) noexcept;
    AsyncRun& operator=(AsyncRun&&) noexcept;
    ~AsyncRun();

    [[nodiscard]] bool valid() const { return state_ != nullptr; }
    /// Executor handle of the submitted seed loop (for drains/diagnostics;
    /// normal completion goes through MvfbPlacer::collect).
    [[nodiscard]] const Executor::Job& job() const { return job_; }

   private:
    friend class MvfbPlacer;
    std::shared_ptr<AsyncState> state_;
    Executor::Job job_;
  };

  /// Submits the seed loop as one job on `executor` (non-blocking).
  [[nodiscard]] AsyncRun submit(Executor& executor);

  /// Waits for the submitted seeds and merges the winner deterministically.
  /// Rethrows the lowest-seed-index failure of this run, if any.
  MvfbResult collect(Executor& executor, AsyncRun& run);

  /// Runs the full multi-start search on a shared executor (submit+collect).
  MvfbResult place_and_execute(Executor& executor);

  /// Runs the full multi-start search on a private executor of
  /// min(options.jobs, options.seeds) workers. Deterministic for a fixed
  /// rng_seed at any job count.
  MvfbResult place_and_execute();

 private:
  /// Outcome of one seed's forward/backward local search.
  struct SeedOutcome {
    Duration best_latency = kInfiniteDuration;
    bool best_is_backward = false;
    ExecutionResult best_execution;
    int runs = 0;
    int iterations = 0;
  };

  /// Runs one seed's local search; thread-confined to `arena` and the
  /// value-owned `seed_rng`, so seeds may execute concurrently.
  SeedOutcome run_seed(Rng seed_rng, SearchArena<Duration>& arena) const;

  const DependencyGraph* qidg_;
  DependencyGraph uidg_;
  const Fabric* fabric_;
  MvfbOptions options_;
  EventSimulator forward_sim_;
  EventSimulator backward_sim_;
  /// Borrowed placement table, or &owned_traps_near_center_.
  const std::vector<TrapId>* traps_near_center_;
  std::vector<TrapId> owned_traps_near_center_;
};

}  // namespace qspr
