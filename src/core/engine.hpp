// MappingEngine: the persistent service core behind map_program and the
// batch mapper.
//
// Where map_program was "one call, one pool, one program", the engine owns
// two long-lived resources shared by many mapping jobs:
//
//   * an Executor whose workers evaluate placement trials — from one job or
//     from many jobs at once, interleaved round-robin so a large circuit
//     cannot starve the queue;
//   * a FabricArtifactCache of read-only per-fabric structures (CSR routing
//     graph, traps-by-center placement table, port-capacity table) built
//     once per distinct fabric and shared const across jobs.
//
// A MapJob names one program + fabric + per-job options (including the RNG
// seed); jobs preserve the PR-2 determinism contract individually: a job's
// MapResult is bit-identical at any worker count and regardless of what else
// shares the executor, because per-trial RNGs are forked up front by index
// and the winner is the (latency, index) minimum.
//
// Two entry shapes:
//   map(...)            — blocking; the classic map_program behaviour.
//   begin(...)/finish() — the batch pipeline: begin() resolves fabric
//                         artifacts on the calling thread and submits the
//                         rest of the setup (QIDG, schedule rank) plus the
//                         placement trials to the executor without blocking;
//                         finish() waits and assembles the MapResult. Several begun jobs keep every worker
//                         busy across job boundaries. Per-job failures stay
//                         per-job: a throwing trial poisons only its own
//                         finish(), never the engine or its neighbours.
#pragma once

#include <memory>
#include <string>

#include "circuit/program.hpp"
#include "common/cancel.hpp"
#include "common/executor.hpp"
#include "core/artifact_cache.hpp"
#include "core/mapper.hpp"
#include "core/result_cache.hpp"

namespace qspr {

/// One unit of mapping work for the engine: which program, onto which
/// fabric, under which per-job options (placer, trial budget, RNG seed,
/// ablation overrides — see MapperOptions). `name` labels batch records.
///
/// `cancel` (optional) is polled between placement trials and between a
/// seed's forward/backward runs: a cancelled or deadline-expired job
/// abandons its remaining trials and finish() rethrows the CancelledError,
/// exactly like any other per-job trial failure — neighbours sharing the
/// executor are unaffected, and a job whose token never fires is
/// bit-identical to one staged without a token.
struct MapJob {
  const Program* program = nullptr;
  const Fabric* fabric = nullptr;
  MapperOptions options;
  std::string name;
  CancelToken cancel;

  /// Optional warm-start prior (incremental remapping): when set,
  /// negotiation_report is on, and the prior converged, the negotiation
  /// diagnostic seeds from the prior's routed nets (WarmStartSeed) instead
  /// of routing cold — unchanged nets keep their paths, only the delta is
  /// searched. Placement and scheduling are unaffected (same determinism
  /// contract); a null / non-converged prior is exactly a cold job.
  std::shared_ptr<const CachedMapResult> warm;
  /// Insert the finished result (with its negotiated nets/paths) into the
  /// engine's ResultCache when the negotiation diagnostic ran and
  /// converged. Off by default so batch flows keep their memory profile;
  /// the serve session path and the incremental bench opt in.
  bool cache_result = false;
};

class MappingEngine {
  struct PendingState;  // staged-job state, defined in engine.cpp

 public:
  /// Workers shared by every job this engine maps. workers >= 1; 1 keeps
  /// everything on the calling thread.
  explicit MappingEngine(int workers = 1);
  ~MappingEngine();

  MappingEngine(const MappingEngine&) = delete;
  MappingEngine& operator=(const MappingEngine&) = delete;

  [[nodiscard]] int worker_count() const;
  [[nodiscard]] Executor& executor();
  [[nodiscard]] FabricArtifactCache& artifacts();
  /// Program-level result cache (exact-resubmission hits + warm priors).
  /// Lookups are never transparent: map()/finish() only *insert* (and only
  /// for jobs with cache_result set) — callers decide when a cached result
  /// may substitute for a fresh mapping via result_key()/results().find().
  [[nodiscard]] ResultCache& results();
  /// The cache key of (program, fabric, options) — canonical program
  /// fingerprint + fabric layout fingerprint + contractual options
  /// fingerprint.
  [[nodiscard]] static ResultCache::Key result_key(const Program& program,
                                                   const Fabric& fabric,
                                                   const MapperOptions& options);
  /// One budget for both engine caches (artifacts + results), split evenly.
  /// 0 = unlimited.
  void set_cache_budget_bytes(std::size_t budget);

  /// A job staged by begin(): setup done, placement trials in flight on the
  /// shared executor. Destroying an unfinished PendingMap drains its trials
  /// first (errors swallowed), so captures never dangle.
  class PendingMap {
   public:
    PendingMap();
    PendingMap(PendingMap&&) noexcept;
    PendingMap& operator=(PendingMap&&) noexcept;
    ~PendingMap();

    [[nodiscard]] bool valid() const { return state_ != nullptr; }
    [[nodiscard]] const std::string& name() const;

   private:
    friend class MappingEngine;
    std::unique_ptr<PendingState> state_;
  };

  /// Stages `job`: resolves fabric artifacts through the cache on the
  /// calling thread, then submits the program-derived setup (QIDG build,
  /// critical path, schedule rank) as an executor job that nested-submits
  /// the placement-trial loop — so a coordinator staging many jobs overlaps
  /// one job's setup with another's trials instead of serialising ahead of
  /// them. Option validation and fabric failures (infeasible fabric, bad
  /// options) throw here; program-derived setup failures and trial failures
  /// surface in finish(). The job's program must stay valid until finish()
  /// — the fabric is only read during begin() (artifacts own a copy).
  [[nodiscard]] PendingMap begin(const MapJob& job);

  /// Blocks until the staged job's trials finish and assembles the
  /// MapResult. Rethrows the job's captured trial failure, if any.
  MapResult finish(PendingMap pending);

  /// Blocking convenience: begin + finish.
  MapResult map(const Program& program, const Fabric& fabric,
                const MapperOptions& options = {});

 private:
  Executor executor_;
  FabricArtifactCache cache_;
  ResultCache result_cache_;
};

}  // namespace qspr
