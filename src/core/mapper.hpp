// End-to-end mapper flows: the paper's QSPR tool and the re-implemented
// prior-art baselines it is evaluated against (§I, §V).
//
//   Qspr          priority list scheduling (§III) + MVFB placement (§IV.A)
//                 + turn-aware dual-qubit median routing with channel
//                 multiplexing (§IV.B).
//   Quale         ALAP scheduling, center placement, destination-fixed
//                 routing, turn-unaware path costs, channel capacity 1.
//   Qpos          ASAP scheduling prioritised by dependent count,
//                 destination-fixed routing, turn-unaware, capacity 1.
//   IdealBaseline T_routing = T_congestion = 0 lower bound (§V.A): the QIDG
//                 critical path with gate delays only.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "circuit/program.hpp"
#include "core/scheduler.hpp"
#include "sim/event_sim.hpp"

namespace qspr {

enum class MapperKind : std::uint8_t { Qspr, Quale, Qpos, IdealBaseline };

enum class PlacerKind : std::uint8_t { Mvfb, MonteCarlo, Center };

struct MapperOptions {
  MapperKind kind = MapperKind::Qspr;
  /// Physical machine description; §V.A defaults.
  TechnologyParams tech;
  /// Weights of the QSPR scheduling priority (§III).
  double priority_alpha = 1.0;
  double priority_beta = 1.0;
  /// Placement engine used by the QSPR flow.
  PlacerKind placer = PlacerKind::Mvfb;
  /// The paper's m (MVFB random seeds).
  int mvfb_seeds = 100;
  /// Trial budget when placer == MonteCarlo.
  int monte_carlo_trials = 100;
  std::uint64_t rng_seed = 1;
  /// Worker threads evaluating placement trials (MVFB seeds / Monte-Carlo
  /// placements) concurrently. Mapping results are bit-identical at any
  /// value; must be >= 1.
  int jobs = 1;
  /// Worker budget for the negotiated PathFinder's speculative
  /// intra-iteration net parallelism (the wave protocol of
  /// route/pathfinder.hpp), used wherever the flow batch-routes nets — the
  /// negotiation diagnostic above all. Results are bit-identical at any
  /// value; must be >= 1 (1 = serial negotiation loop).
  int route_jobs = 1;
  /// ALT landmark count for the negotiated PathFinder batches (the
  /// negotiation diagnostic and the batch service). Tables are built once
  /// per distinct fabric via FabricArtifacts::landmark_tables and shared
  /// across jobs; 0 disables ALT (grid bound only). Results are identical
  /// at any value — landmarks only prune the search.
  int route_landmarks = 8;
  /// Bounded-suboptimality knob forwarded to
  /// PathFinderOptions::heuristic_weight: negotiated searches may return
  /// paths up to this factor over the optimal negotiated cost. 1.0 (the
  /// default) is the exact search, bit-identical to the pre-knob engine.
  double route_heuristic_weight = 1.0;

  /// Batch-route the winning trace's relocations with the negotiated
  /// PathFinder and attach the convergence diagnostics to the result
  /// (MapResult::negotiation; surfaced by qspr_map --report).
  bool negotiation_report = false;

  // --- Ablation overrides (nullopt = the mapper's published behaviour) ---
  std::optional<bool> turn_aware;
  std::optional<bool> dual_move;
  std::optional<bool> return_home;
  std::optional<int> channel_capacity;
  std::optional<SchedulePolicy> schedule_policy;
  /// Extension (not in the paper): congestion-aware target trap selection.
  std::optional<TrapSelectionPolicy> trap_selection;
};

/// Congestion stress diagnostic of a mapped circuit: every trap-to-trap
/// relocation the winning execution performed, batch-routed *simultaneously*
/// by the negotiated PathFinder. A converging batch means the fabric could
/// absorb the program's full relocation demand at once; a non-converging one
/// reports how far over capacity the demand is (and how much of that excess
/// is structural — endpoint port demand no router can remove).
struct NegotiationDiagnostics {
  int nets = 0;
  int iterations_used = 0;
  bool converged = false;
  int overused_resources = 0;
  int max_overuse = 0;
  int total_excess = 0;
  int min_feasible_excess = 0;
  long long searches_performed = 0;
  /// Total physical delay of the negotiated batch (not part of the mapped
  /// latency; a whole-layer routing figure of merit).
  Duration total_delay = 0;
  /// Wave-speculation observability (MapperOptions::route_jobs): these
  /// describe *how* the identical result was computed, and are the only
  /// fields that may differ across route_jobs values.
  int route_jobs = 1;
  long long speculative_commits = 0;
  long long speculative_reroutes = 0;
  /// ALT/quality observability (MapperOptions::route_landmarks and
  /// ::route_heuristic_weight): landmark count the searches ran with, the
  /// suboptimality weight, mid-negotiation potential-table refreshes, and
  /// the nodes the searches settled (the figure ALT exists to shrink).
  int landmarks_used = 0;
  double heuristic_weight = 1.0;
  int alt_refreshes = 0;
  long long nodes_settled = 0;
  /// Warm-start observability (engine incremental remapping): nets that
  /// entered the negotiation pre-routed from a prior result, and how many
  /// of those survived to convergence untouched. 0/0 on cold runs; part of
  /// the bit-identity contract (identical at any route_jobs/frontier kind).
  int warm_seeded = 0;
  int warm_kept = 0;
};

struct MapResult {
  MapperKind kind = MapperKind::Qspr;
  /// Total execution latency of the mapped circuit.
  Duration latency = 0;
  /// The ideal lower bound (critical path, gate delays only).
  Duration ideal_latency = 0;
  /// Control trace of the reported solution (empty for IdealBaseline).
  Trace trace;
  Placement initial_placement;
  Placement final_placement;
  ExecutionStats stats;
  std::vector<InstructionTiming> timings;
  /// Placement runs consumed (1 for single-placement flows).
  int placement_runs = 1;
  /// Wall-clock mapping time.
  double cpu_ms = 0.0;
  /// Thread-CPU time spent inside placement trials, summed over workers
  /// (scheduler time, not wall clock: a descheduled worker accrues nothing).
  /// trial_cpu_ms / cpu_ms therefore measures the parallelism the hardware
  /// actually delivered — it approaches `jobs` only when that many cores
  /// genuinely ran the trials.
  double trial_cpu_ms = 0.0;
  /// Thread-CPU time spent in program-derived setup (QIDG build, critical
  /// path, schedule rank) — since PR 9 that work runs as an executor job
  /// overlapped with other jobs' trials, and this field makes the
  /// setup-vs-search split observable per request in batch/serve stats.
  double setup_ms = 0.0;
  /// Worker threads the mapping ran with.
  int jobs = 1;
  /// Present when MapperOptions::negotiation_report was set (and the flow
  /// produced a trace to diagnose).
  std::optional<NegotiationDiagnostics> negotiation;
  /// Incremental-remapping observability. `warm_hits` counts negotiated nets
  /// served from a warm seed without a single re-route (the whole net count
  /// on an exact result-cache hit); `nets_rerouted` counts the nets the
  /// negotiation actually searched. Cold mappings report 0 / all-nets.
  int warm_hits = 0;
  int nets_rerouted = 0;
};

/// Maps `program` onto `fabric`. Throws ValidationError / SimulationError on
/// impossible inputs (fabric too small, disconnected, ...).
MapResult map_program(const Program& program, const Fabric& fabric,
                      const MapperOptions& options = {});

[[nodiscard]] std::string to_string(MapperKind kind);

/// CLI-name parsers shared by qspr_map and qspr_batch: "qspr" | "quale" |
/// "qpos" | "baseline", and "mvfb" | "mc" | "center". nullopt when unknown.
[[nodiscard]] std::optional<MapperKind> mapper_kind_from_name(
    std::string_view name);
[[nodiscard]] std::optional<PlacerKind> placer_kind_from_name(
    std::string_view name);

/// The execution options (routing/physics policy) a mapper kind implies,
/// after applying the ablation overrides.
[[nodiscard]] ExecutionOptions execution_options_for(
    const MapperOptions& options);

/// The schedule policy a mapper kind implies, after overrides.
[[nodiscard]] ScheduleOptions schedule_options_for(const MapperOptions& options);

}  // namespace qspr
