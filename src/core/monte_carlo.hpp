// The Monte Carlo placer of the paper's experimental setup (§V.A): m' random
// center placements, each fully scheduled and routed; the lowest-latency one
// wins. It is the budget-matched baseline MVFB is compared against in
// Table 1.
//
// Trials are independent by construction (per-trial RNGs are forked up front
// by trial index), so they evaluate on any worker set with bit-identical
// results: the winner is the (latency, trial index) minimum. The trial loop
// runs on an Executor — a private one for the classic blocking entry point,
// or a shared one via the Executor& overload and the submit/collect pair the
// batch service pipelines jobs through.
#pragma once

#include <memory>

#include "circuit/dependency_graph.hpp"
#include "common/cancel.hpp"
#include "common/executor.hpp"
#include "sim/event_sim.hpp"

namespace qspr {

struct MonteCarloResult {
  Duration best_latency = kInfiniteDuration;
  Placement best_initial_placement;
  ExecutionResult best_execution;
  int trials = 0;
  /// Thread-CPU time spent inside trials, summed over workers.
  double trial_cpu_ms = 0.0;
};

/// In-flight Monte-Carlo trial loop on a shared executor: owns the simulator
/// and all per-worker scratch, so the inputs passed to monte_carlo_submit
/// (graphs, rank, options) only need to outlive the run itself.
class MonteCarloRun {
 public:
  MonteCarloRun();
  MonteCarloRun(MonteCarloRun&&) noexcept;
  MonteCarloRun& operator=(MonteCarloRun&&) noexcept;
  ~MonteCarloRun();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// Executor handle of the submitted trial loop (for drains/diagnostics;
  /// normal completion goes through monte_carlo_collect).
  [[nodiscard]] const Executor::Job& job() const { return job_; }

 private:
  friend MonteCarloRun monte_carlo_submit(
      const DependencyGraph& qidg, const Fabric& fabric,
      const RoutingGraph& routing_graph, const std::vector<int>& rank,
      const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
      Executor& executor, const std::vector<TrapId>* traps_near_center,
      CancelToken cancel);
  friend MonteCarloResult monte_carlo_collect(Executor& executor,
                                              MonteCarloRun& run);
  std::shared_ptr<struct MonteCarloState> state_;
  Executor::Job job_;
};

/// Submits `trials` random center placements as one job on `executor`
/// (non-blocking). `traps_near_center` (optional) is a precomputed
/// traps-by-center table that must outlive the run; when null the run
/// derives its own once. `cancel` (optional) is polled at the start of
/// every trial: once it fires, remaining trials throw CancelledError and
/// collect() rethrows it (per-job, neighbours unaffected).
[[nodiscard]] MonteCarloRun monte_carlo_submit(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    Executor& executor, const std::vector<TrapId>* traps_near_center = nullptr,
    CancelToken cancel = {});

/// Waits for the submitted trials and merges the winner deterministically by
/// (latency, trial index). Rethrows the lowest-trial-index failure, if any.
MonteCarloResult monte_carlo_collect(Executor& executor, MonteCarloRun& run);

/// Blocking trial loop on a shared executor (submit + collect).
MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    Executor& executor, const std::vector<TrapId>* traps_near_center = nullptr);

/// Executes `trials` random center placements on a private executor of
/// min(jobs, trials) workers and keeps the best. Deterministic for a fixed
/// rng_seed at any job count.
MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    int jobs = 1);

}  // namespace qspr
