// The Monte Carlo placer of the paper's experimental setup (§V.A): m' random
// center placements, each fully scheduled and routed; the lowest-latency one
// wins. It is the budget-matched baseline MVFB is compared against in
// Table 1.
//
// Trials are independent by construction (per-trial RNGs are forked up front
// by trial index), so they evaluate on `jobs` workers with bit-identical
// results at any worker count: the winner is the (latency, trial index)
// minimum.
#pragma once

#include "circuit/dependency_graph.hpp"
#include "sim/event_sim.hpp"

namespace qspr {

struct MonteCarloResult {
  Duration best_latency = kInfiniteDuration;
  Placement best_initial_placement;
  ExecutionResult best_execution;
  int trials = 0;
  /// Thread-CPU time spent inside trials, summed over workers.
  double trial_cpu_ms = 0.0;
};

/// Executes `trials` random center placements on `jobs` workers and keeps
/// the best. Deterministic for a fixed rng_seed at any job count.
MonteCarloResult monte_carlo_place_and_execute(
    const DependencyGraph& qidg, const Fabric& fabric,
    const RoutingGraph& routing_graph, const std::vector<int>& rank,
    const ExecutionOptions& exec_options, int trials, std::uint64_t rng_seed,
    int jobs = 1);

}  // namespace qspr
