// Quickstart: parse a QASM program (the paper's Fig. 3 encoder), map it onto
// the 45x85 ion-trap fabric with QSPR, and inspect the result.
//
//   $ ./quickstart
#include <iostream>

#include "core/qspr.hpp"

int main() {
  using namespace qspr;

  // 1. A quantum program in the paper's QASM dialect ([[5,1,3]] encoder).
  const Program program = parse_qasm(R"(
    QUBIT q0,0
    QUBIT q1,0
    QUBIT q2,0
    QUBIT q3        # the data qubit
    QUBIT q4,0
    H q0
    H q1
    H q2
    H q4
    C-X q3,q2
    C-Z q4,q2
    C-Y q3,q1
    C-Y q2,q1
    C-Y q3,q0
    C-X q4,q1
    C-Z q2,q0
    C-Z q4,q0
  )",
                                     "[[5,1,3]]");
  std::cout << "parsed " << program.name() << ": " << program.qubit_count()
            << " qubits, " << program.instruction_count()
            << " instructions\n";

  // 2. The target fabric: the paper's 45x85 QUALE-style grid (Fig. 4).
  const Fabric fabric = make_paper_fabric();
  std::cout << describe_fabric(fabric) << "\n";

  // 3. Map with QSPR: priority scheduling + MVFB placement + turn-aware
  //    congestion-negotiated routing. All knobs have paper defaults.
  MapperOptions options;
  options.mvfb_seeds = 25;  // the paper's m
  const MapResult result = map_program(program, fabric, options);

  // 4. Results: total latency, the ideal lower bound, and Eq. 1 terms.
  std::cout << "\nmapped latency:    " << result.latency << " us\n"
            << "ideal lower bound: " << result.ideal_latency << " us\n"
            << "sum T_routing:     " << result.stats.total_routing << " us\n"
            << "sum T_congestion:  " << result.stats.total_congestion
            << " us\n"
            << "moves / turns:     " << result.stats.moves << " / "
            << result.stats.turns << "\n"
            << "placement runs:    " << result.placement_runs << "\n";

  // 5. The control trace drives the physical machine; print the first ops.
  std::cout << "\nfirst micro-commands of the control trace:\n";
  int shown = 0;
  for (const MicroOp& op : result.trace.ops()) {
    if (shown++ == 8) break;
    std::cout << "  [" << op.start << "," << op.end << "] "
              << (op.kind == MicroOpKind::Move   ? "move"
                  : op.kind == MicroOpKind::Turn ? "turn"
                                                 : "gate")
              << (op.qubit.is_valid()
                      ? " q" + std::to_string(op.qubit.value())
                      : "")
              << " at " << to_string(op.from) << "\n";
  }
  return 0;
}
