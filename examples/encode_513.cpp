// Maps the [[5,1,3]] cyclic-QECC encoder (paper Figs. 2-3) with every
// mapper and dumps the winning control trace plus the QIDG in Graphviz DOT,
// showing the full artefact set a downstream tool would consume.
//
//   $ ./encode_513 [--dot] [--trace]
#include <cstring>
#include <iostream>

#include "circuit/dot.hpp"
#include "core/qspr.hpp"

int main(int argc, char** argv) {
  using namespace qspr;
  bool dump_dot = false;
  bool dump_trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dump_dot = true;
    if (std::strcmp(argv[i], "--trace") == 0) dump_trace = true;
  }

  const Program program = make_encoder(QeccCode::Q5_1_3);
  const Fabric fabric = make_paper_fabric();
  std::cout << "circuit: " << program.name() << " - "
            << write_qasm(program) << "\n";

  if (dump_dot) {
    std::cout << "QIDG (Graphviz):\n"
              << to_dot(DependencyGraph::build(program), &program) << "\n";
  }

  TextTable table(
      {"Mapper", "Latency (us)", "vs baseline", "Moves", "Turns", "Runs"});
  MapResult best;
  Duration best_latency = kInfiniteDuration;
  for (const MapperKind kind : {MapperKind::IdealBaseline, MapperKind::Quale,
                                MapperKind::Qpos, MapperKind::Qspr}) {
    MapperOptions options;
    options.kind = kind;
    options.mvfb_seeds = 25;
    const MapResult result = map_program(program, fabric, options);
    table.add_row({std::string(to_string(kind)),
                   std::to_string(result.latency),
                   kind == MapperKind::IdealBaseline
                       ? "-"
                       : "+" + std::to_string(result.latency -
                                              result.ideal_latency),
                   std::to_string(result.stats.moves),
                   std::to_string(result.stats.turns),
                   std::to_string(result.placement_runs)});
    if (kind != MapperKind::IdealBaseline && result.latency < best_latency) {
      best_latency = result.latency;
      best = result;
    }
  }
  std::cout << table.to_string();

  if (dump_trace) {
    std::cout << "\nwinning control trace (" << best.trace.size()
              << " micro-commands):\n"
              << best.trace.to_string();
  } else {
    std::cout << "\n(rerun with --trace to dump all " << best.trace.size()
              << " micro-commands, --dot for the QIDG)\n";
  }
  return 0;
}
