// batch_corpus — writes the mixed-size QASM corpus the batch-mapping docs,
// CI smoke and throughput bench drive qspr_batch with.
//
//   example_batch_corpus <output-dir> [--broken]
//
// Emits the calibrated QECC encoder benchmarks (5..14 qubits) plus two
// deterministic random circuits, one file per program, and prints the file
// list. --broken also writes broken.qasm (a syntactically invalid program)
// to exercise the batch service's per-job fault isolation: qspr_batch over
// the directory must fail exactly that record and exit non-zero while every
// other program still maps.
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/qspr.hpp"
#include "service/corpus.hpp"

using namespace qspr;

namespace {

/// Filesystem-safe stem from a program name: "[[5,1,3]]" -> "q5_1_3".
std::string file_stem(const std::string& name) {
  std::string stem;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      stem += c;
    } else if (!stem.empty() && stem.back() != '_') {
      stem += '_';
    }
  }
  while (!stem.empty() && stem.back() == '_') stem.pop_back();
  if (stem.empty()) stem = "program";
  if (std::isdigit(static_cast<unsigned char>(stem.front()))) {
    stem.insert(stem.begin(), 'q');
  }
  return stem;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string out_dir;
    bool broken = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--broken") {
        broken = true;
      } else if (!arg.empty() && arg[0] != '-') {
        out_dir = arg;
      } else {
        std::cerr << "usage: " << argv[0] << " <output-dir> [--broken]\n";
        return 2;
      }
    }
    if (out_dir.empty()) {
      std::cerr << "usage: " << argv[0] << " <output-dir> [--broken]\n";
      return 2;
    }
    std::filesystem::create_directories(out_dir);
    // The corpus definition is shared with bench_runner's batch_throughput
    // suite (src/service/corpus.cpp), so CI smoke and bench run the same
    // workload.
    for (const Program& program : make_batch_corpus(/*full=*/true)) {
      const std::string path =
          out_dir + "/" + file_stem(program.name()) + ".qasm";
      write_qasm_file(program, path);
      std::cout << path << "\n";
    }

    if (broken) {
      // First member of the shared broken-file corpus (service/corpus.cpp),
      // the same inputs the parser-robustness tests assert fail cleanly.
      const BrokenQasm& sample = broken_qasm_corpus().front();
      const std::string path = out_dir + "/" + sample.name + ".qasm";
      std::ofstream file(path);
      file << sample.text;
      std::cout << path << "  # " << sample.reason << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
