// Compares all mappers across the full QECC benchmark suite — the
// at-a-glance version of the paper's Table 2, as library-user code.
//
//   $ ./compare_mappers [m]        (MVFB seeds, default 25)
#include <iostream>

#include "common/strings.hpp"
#include "core/qspr.hpp"

int main(int argc, char** argv) {
  using namespace qspr;
  const int m = argc > 1 ? static_cast<int>(parse_integer(argv[1])) : 25;

  const Fabric fabric = make_paper_fabric();
  TextTable table({"Circuit", "Baseline", "QUALE", "QPOS", "QSPR (m=" +
                       std::to_string(m) + ")",
                   "QSPR vs QUALE"});

  for (const PaperNumbers& paper : paper_benchmarks()) {
    const Program program = make_encoder(paper.code);
    Duration latencies[4];
    const MapperKind kinds[4] = {MapperKind::IdealBaseline, MapperKind::Quale,
                                 MapperKind::Qpos, MapperKind::Qspr};
    for (int k = 0; k < 4; ++k) {
      MapperOptions options;
      options.kind = kinds[k];
      options.mvfb_seeds = m;
      latencies[k] = map_program(program, fabric, options).latency;
    }
    table.add_row(
        {code_name(paper.code), std::to_string(latencies[0]),
         std::to_string(latencies[1]), std::to_string(latencies[2]),
         std::to_string(latencies[3]),
         format_fixed(100.0 *
                          static_cast<double>(latencies[1] - latencies[3]) /
                          static_cast<double>(latencies[1]),
                      1) +
             "%"});
  }
  std::cout << table.to_string();
  std::cout << "\nlatencies in us; paper Table 2 reports 24-55% improvement "
               "wrt QUALE with m=100.\n";
  return 0;
}
