// Designing and evaluating a custom ion-trap fabric: draw one in ASCII,
// load it, and measure how the same circuit maps onto differently shaped
// fabrics (the fabric is an input of the CAD flow, paper Fig. 1).
//
//   $ ./custom_fabric
#include <iostream>

#include "core/qspr.hpp"

int main() {
  using namespace qspr;

  // A hand-drawn asymmetric fabric: a wide corridor with trap clusters.
  const Fabric drawn = parse_fabric(R"(
J---J---J---J---J
|T.T|T.T|T.T|T.T|
|...|...|...|...|
|T.T|T.T|T.T|T.T|
J---J---J---J---J
|T.T|T.T|T.T|T.T|
|...|...|...|...|
|T.T|T.T|T.T|T.T|
J---J---J---J---J
)",
                                    "corridor");
  std::cout << describe_fabric(drawn) << "\n" << render_fabric(drawn) << "\n";

  // Generated alternatives of different aspect ratios and pitches.
  struct Option {
    const char* name;
    QualeFabricParams params;
  };
  const Option options[] = {
      {"compact 5x5 lattice, pitch 4", {5, 5, 4}},
      {"wide 3x9 lattice, pitch 4", {3, 9, 4}},
      {"dense 5x5 lattice, pitch 2", {5, 5, 2}},
      {"sparse 4x4 lattice, pitch 6", {4, 4, 6}},
  };

  const Program program = make_encoder(QeccCode::Q7_1_3);
  std::cout << "mapping " << program.name() << " (ideal baseline "
            << DependencyGraph::build(program).critical_path_latency(
                   TechnologyParams{})
            << " us) onto each fabric:\n\n";

  TextTable table({"Fabric", "Cells", "Traps", "QSPR latency (us)",
                   "QUALE latency (us)"});
  const auto map_onto = [&program](const Fabric& fabric) {
    MapperOptions qspr_options;
    qspr_options.mvfb_seeds = 10;
    MapperOptions quale_options;
    quale_options.kind = MapperKind::Quale;
    return std::pair<Duration, Duration>(
        map_program(program, fabric, qspr_options).latency,
        map_program(program, fabric, quale_options).latency);
  };

  const auto [drawn_qspr, drawn_quale] = map_onto(drawn);
  table.add_row({"hand-drawn corridor",
                 std::to_string(drawn.rows()) + "x" +
                     std::to_string(drawn.cols()),
                 std::to_string(drawn.trap_count()),
                 std::to_string(drawn_qspr), std::to_string(drawn_quale)});
  for (const Option& option : options) {
    const Fabric fabric = make_quale_fabric(option.params);
    const auto [qspr_latency, quale_latency] = map_onto(fabric);
    table.add_row({option.name,
                   std::to_string(fabric.rows()) + "x" +
                       std::to_string(fabric.cols()),
                   std::to_string(fabric.trap_count()),
                   std::to_string(qspr_latency),
                   std::to_string(quale_latency)});
  }
  std::cout << table.to_string();
  std::cout << "\ntakeaway: QSPR's advantage holds across fabric shapes; "
               "denser fabrics shorten routes but congest faster.\n";
  return 0;
}
