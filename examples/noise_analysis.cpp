// Noise analysis of a mapped circuit: fidelity estimation, channel
// utilisation heat map and an instruction Gantt chart — the post-mapping
// "error analysis" step of the CAD flow (paper Fig. 1, §I: the synthesizer
// re-encodes if the mapped latency pushes the error over threshold).
//
//   $ ./noise_analysis
#include <iostream>

#include "core/qspr.hpp"

int main() {
  using namespace qspr;
  const Program program = make_encoder(QeccCode::Q9_1_3);
  const Fabric fabric = make_paper_fabric();
  const DependencyGraph graph = DependencyGraph::build(program);

  MapperOptions options;
  options.mvfb_seeds = 25;
  const MapResult result = map_program(program, fabric, options);
  std::cout << "mapped " << program.name() << ": latency " << result.latency
            << " us (ideal " << result.ideal_latency << " us)\n\n";

  // 1. Fidelity under an ion-trap error model, as a function of T2.
  std::cout << "fidelity vs coherence time:\n";
  TextTable fidelity_table(
      {"T2 (ms)", "Circuit fidelity", "Decoherence part", "Operation part"});
  for (const double t2_ms : {1.0, 10.0, 50.0, 100.0, 1000.0}) {
    ErrorModelParams error_params;
    error_params.t2_us = t2_ms * 1000.0;
    const FidelityEstimate estimate = estimate_fidelity(
        result.trace, program.qubit_count(), program.two_qubit_gate_count(),
        error_params);
    fidelity_table.add_row({format_fixed(t2_ms, 0),
                            format_fixed(estimate.circuit_fidelity, 4),
                            format_fixed(estimate.decoherence_fidelity, 4),
                            format_fixed(estimate.operation_fidelity, 4)});
  }
  std::cout << fidelity_table.to_string() << "\n";

  // 2. Where the transport happened: channel utilisation.
  const ResourceUtilization utilization =
      analyze_utilization(result.trace, fabric);
  std::cout << utilization_summary(utilization, fabric) << "\n";

  // 3. When each instruction ran: Gantt chart (waiting/routing/gate).
  std::cout << "execution timeline:\n"
            << render_gantt(result.timings, graph) << "\n";

  // 4. The trace can be serialised for external tools.
  const std::string text = write_trace(result.trace);
  std::cout << "serialised trace: " << text.size() << " bytes, "
            << result.trace.size()
            << " micro-commands (round-trips via parse_trace).\n";
  const Trace reparsed = parse_trace(text);
  std::cout << "round-trip check: "
            << (reparsed.makespan() == result.trace.makespan() ? "ok"
                                                               : "MISMATCH")
            << "\n";
  return 0;
}
