// Explores the scheduling layer: QIDG analyses (ASAP/ALAP/slack/priority),
// the total order each policy induces, and how the backward (UIDG) pass of
// MVFB sees the same circuit.
//
//   $ ./schedule_explorer
#include <iostream>

#include "core/qspr.hpp"

int main() {
  using namespace qspr;
  const Program program = make_encoder(QeccCode::Q5_1_3);
  const DependencyGraph qidg = DependencyGraph::build(program);
  const TechnologyParams tech;

  std::cout << "circuit " << program.name() << ": " << qidg.node_count()
            << " instructions, critical path "
            << qidg.critical_path_latency(tech) << " us\n\n";

  const auto asap = qidg.asap_start_times(tech);
  const auto alap = qidg.alap_start_times(tech);
  const auto longest = qidg.longest_path_to_sink(tech);
  const auto dependents = qidg.descendant_counts();
  const auto rank = make_schedule_rank(qidg, tech);

  TextTable table({"#", "Gate", "ASAP", "ALAP", "Slack", "Longest-to-sink",
                   "Dependents", "QSPR rank"});
  for (const Instruction& instr : qidg.instructions()) {
    const std::size_t i = instr.id.index();
    std::string gate{mnemonic(instr.kind)};
    gate += " " + program.qubit(instr.target).name;
    if (instr.is_two_qubit()) {
      gate = std::string(mnemonic(instr.kind)) + " " +
             program.qubit(instr.control).name + "," +
             program.qubit(instr.target).name;
    }
    table.add_row({std::to_string(i), gate, std::to_string(asap[i]),
                   std::to_string(alap[i]),
                   std::to_string(alap[i] - asap[i]),
                   std::to_string(longest[i]),
                   std::to_string(dependents[i]), std::to_string(rank[i])});
  }
  std::cout << table.to_string();

  std::cout << "\nissue order per policy (instruction ids):\n";
  for (const auto& [name, policy] :
       std::vector<std::pair<std::string, SchedulePolicy>>{
           {"QSPR priority", SchedulePolicy::QsprPriority},
           {"ALAP (QUALE)", SchedulePolicy::Alap},
           {"dependents (QPOS)", SchedulePolicy::AsapDependents}}) {
    const auto order = schedule_order(
        make_schedule_rank(qidg, tech, ScheduleOptions{policy, 1.0, 1.0}));
    std::cout << "  " << name << ": ";
    for (const InstructionId id : order) std::cout << id.value() << ' ';
    std::cout << "\n";
  }

  // The uncompute graph: inverse gates, reversed edges, same critical path.
  const DependencyGraph uidg = qidg.reversed();
  std::cout << "\nUIDG (backward pass of MVFB): critical path "
            << uidg.critical_path_latency(tech)
            << " us; first gate of the forward order becomes the last of the "
               "reversed order S*.\n";
  return 0;
}
